//===- profiler/EventStream.cpp -------------------------------------------===//

#include "profiler/EventStream.h"

#include "support/Crc32c.h"
#include "support/Lz.h"

#include <chrono>
#include <cstring>
#include <thread>

#ifndef _WIN32
#include <unistd.h>
#endif

using namespace jdrag;
using namespace jdrag::profiler;

EventSink::~EventSink() = default;
EventConsumer::~EventConsumer() = default;

std::uint32_t jdrag::profiler::backoffDelayMicros(const BackoffPolicy &P,
                                                  std::uint32_t Attempt,
                                                  std::uint32_t Salt) {
  std::uint32_t Shift = Attempt < P.MaxDelayShift ? Attempt : P.MaxDelayShift;
  std::uint32_t Delay = P.BaseDelayMicros << Shift;
  if (P.Jitter && Delay > 1) {
    // Deterministic (seedless) jitter: a Weyl-style hash of the salt
    // spreads a fleet of clients across [Delay/2, Delay] without
    // consulting a clock or RNG, keeping retry schedules reproducible.
    std::uint32_t H = (Salt + 1) * 2654435761u;
    Delay -= H % (Delay / 2 + 1);
  }
  return Delay;
}

namespace {
constexpr const char *EventKindNames[] = {
    "define-site", "alloc",   "use",      "gc-end",
    "deep-gc-end", "collect", "survivor", "terminate",
};
static_assert(std::size(EventKindNames) == NumEventKinds,
              "name every EventKind");

// .jdev header: 8-byte StreamFileMagic, u32 version, u32 reserved.
constexpr std::uint64_t StreamMagic = StreamFileMagic;

//===----------------------------------------------------------------------===//
// v3 varint primitives
//===----------------------------------------------------------------------===//
//
// LEB128 unsigned varints, at most 10 bytes for a u64. Timestamps are
// zigzag-mapped signed *deltas* against the previous record's time (the
// byte clock is monotonic, so deltas are small), every other field is an
// unsigned varint of its value. SiteIds are biased by +1 so the common
// InvalidSite (~0u) costs one byte instead of five.

constexpr std::size_t MaxVarintBytes = 10;

/// Appends V as a LEB128 varint; returns bytes written (<= 10).
inline std::size_t putUvar(std::uint8_t *P, std::uint64_t V) {
  std::size_t N = 0;
  do {
    std::uint8_t B = V & 0x7F;
    V >>= 7;
    if (V)
      B |= 0x80;
    P[N++] = B;
  } while (V);
  return N;
}

inline std::uint64_t zigzagEncode(std::int64_t V) {
  return (static_cast<std::uint64_t>(V) << 1) ^
         static_cast<std::uint64_t>(V >> 63);
}

inline std::int64_t zigzagDecode(std::uint64_t V) {
  return static_cast<std::int64_t>(V >> 1) ^
         -static_cast<std::int64_t>(V & 1);
}

inline std::size_t putSvar(std::uint8_t *P, std::int64_t V) {
  return putUvar(P, zigzagEncode(V));
}

/// The +1 site bias, in u32 arithmetic so InvalidSite wraps to 0.
inline std::uint64_t biasSite(SiteId S) {
  return static_cast<std::uint32_t>(S + 1);
}

/// Bounded varint reader over one contiguous span. Distinguishes "ran
/// out of bytes" (Short: the record straddles the feed boundary, wait
/// for more) from "malformed" (Bad: overlong varint or u64 overflow,
/// the stream is corrupt).
struct VarReader {
  const std::byte *P;
  std::size_t N;
  std::size_t Off = 0;
  bool Short = false;
  bool Bad = false;

  bool byte(std::uint8_t &B) {
    if (Off == N) {
      Short = true;
      return false;
    }
    B = std::to_integer<std::uint8_t>(P[Off++]);
    return true;
  }

  std::uint64_t uvar() {
    std::uint64_t V = 0;
    for (std::size_t I = 0; I != MaxVarintBytes; ++I) {
      std::uint8_t B;
      if (!byte(B))
        return 0;
      V |= static_cast<std::uint64_t>(B & 0x7F) << (7 * I);
      if (!(B & 0x80)) {
        if (I == MaxVarintBytes - 1 && B > 1)
          Bad = true; // 10th byte may only carry bit 64's remainder
        return V;
      }
    }
    Bad = true; // continuation bit set past the 10-byte limit
    return 0;
  }

  std::int64_t svar() { return zigzagDecode(uvar()); }

  /// uvar that must fit a u32 (site ids, frame fields).
  std::uint32_t uvar32() {
    std::uint64_t V = uvar();
    if (V > 0xFFFFFFFFull)
      Bad = true;
    return static_cast<std::uint32_t>(V);
  }
};

// v3 tag byte: bits 0-2 = EventKind, bits 3-7 = kind-specific inline
// flags. Spare bits MUST be zero -- a set spare bit fails the decode,
// preserving the corruption detection the fixed format got for free.
constexpr std::uint8_t TagKindMask = 0x07;
constexpr std::uint8_t AllocIsArrayBit = 0x08;  // Flags bit0
constexpr std::uint8_t AllocKindShift = 4;      // Sub (ArrayKind, 2 bits)
constexpr std::uint8_t AllocSpareMask = 0xC0;   // bits 6-7
constexpr std::uint8_t UseDuringInitBit = 0x08; // Flags bit0
constexpr std::uint8_t UseKindShift = 4;        // Sub (UseKind, 3 bits)
constexpr std::uint8_t UseSpareMask = 0x80;     // bit 7

/// Upper bound on any encoded non-site v3/v4 record: tag + 5 varints.
/// With at least this much contiguous input left, a record decode can
/// skip every per-byte bounds check (the batch fast path).
constexpr std::size_t MaxV3EventBytes = 1 + 5 * MaxVarintBytes;

/// VarReader without bounds checks, for spans proven long enough to
/// hold the whole record. Still detects overlong varints (Bad) -- only
/// the Short machinery is gone.
struct FastVarReader {
  const std::byte *P;
  std::size_t Off = 0;
  bool Bad = false;

  std::uint64_t uvar() {
    std::uint64_t V = 0;
    for (std::size_t I = 0; I != MaxVarintBytes; ++I) {
      auto B = std::to_integer<std::uint8_t>(P[Off++]);
      V |= static_cast<std::uint64_t>(B & 0x7F) << (7 * I);
      if (!(B & 0x80)) {
        if (I == MaxVarintBytes - 1 && B > 1)
          Bad = true; // 10th byte may only carry bit 64's remainder
        return V;
      }
    }
    Bad = true; // continuation bit set past the 10-byte limit
    return 0;
  }

  std::int64_t svar() { return zigzagDecode(uvar()); }

  std::uint32_t uvar32() {
    std::uint64_t V = uvar();
    if (V > 0xFFFFFFFFull)
      Bad = true;
    return static_cast<std::uint32_t>(V);
  }
};

/// The footer's on-wire per-chunk entry (48 bytes, native-endian like
/// the rest of the stream).
struct WireIndexEntry {
  std::uint64_t Offset;
  std::uint32_t Seq;
  std::uint32_t PayloadBytes;
  std::uint32_t Crc;
  std::uint32_t RecordCount;
  std::uint64_t FirstTime;
  std::uint64_t LastTime;
  std::uint64_t FirstRecord;
};
static_assert(sizeof(WireIndexEntry) == 48, "footer wire format");
static_assert(std::is_trivially_copyable_v<WireIndexEntry>);

/// Result of measuring one record without dispatching it (the index
/// rebuild scan): Len = 0 means the record straddles past the end of
/// the span.
struct WalkResult {
  std::size_t Len = 0;
  bool Malformed = false;
  bool Timed = false;
  ByteTime Time = 0;
};

WalkResult walkRecordV2(const std::byte *P, std::size_t N) {
  WalkResult R;
  if (N < sizeof(EventRecord))
    return R;
  EventRecord E;
  std::memcpy(&E, P, sizeof(E));
  if (E.Kind >= NumEventKinds) {
    R.Malformed = true;
    return R;
  }
  if (E.kind() == EventKind::DefineSite) {
    if (E.Arg0 > MaxWireFrames) {
      R.Malformed = true;
      return R;
    }
    std::size_t Len = sizeof(EventRecord) +
                      static_cast<std::size_t>(E.Arg0) * sizeof(WireFrame);
    if (N < Len)
      return R;
    R.Len = Len;
    return R;
  }
  R.Len = sizeof(EventRecord);
  R.Timed = true;
  R.Time = E.Time;
  return R;
}

WalkResult walkRecordV3(const std::byte *P, std::size_t N,
                        ByteTime LastTime) {
  WalkResult R;
  VarReader V{P, N};
  std::uint8_t Tag;
  if (!V.byte(Tag))
    return R;
  auto Kind = static_cast<EventKind>(Tag & TagKindMask);
  if (Kind == EventKind::DefineSite) {
    if (Tag & ~TagKindMask) {
      R.Malformed = true;
      return R;
    }
    V.uvar32(); // site id
    std::uint64_t FrameCount = V.uvar();
    if (!V.Short && !V.Bad && FrameCount > MaxWireFrames) {
      R.Malformed = true;
      return R;
    }
    for (std::uint64_t I = 0; I != FrameCount && !V.Short && !V.Bad; ++I) {
      V.uvar32();
      V.uvar32();
      V.uvar32();
    }
  } else {
    std::int64_t Delta = V.svar();
    R.Timed = true;
    R.Time = LastTime + static_cast<std::uint64_t>(Delta);
    std::uint8_t SpareMask = ~TagKindMask;
    switch (Kind) {
    case EventKind::Alloc:
      SpareMask = AllocSpareMask;
      V.uvar();
      V.uvar();
      V.uvar();
      V.uvar32();
      break;
    case EventKind::Use:
      SpareMask = UseSpareMask;
      if (!V.Short && ((Tag >> UseKindShift) & 0x7) == 7) {
        R.Malformed = true;
        return R;
      }
      V.uvar();
      V.uvar32();
      break;
    case EventKind::GCEnd:
      V.uvar();
      V.uvar();
      break;
    case EventKind::Collect:
    case EventKind::Survivor:
      V.uvar();
      break;
    case EventKind::DeepGCEnd:
    case EventKind::Terminate:
      break;
    case EventKind::DefineSite:
      break; // unreachable: handled above
    }
    if (Tag & SpareMask) {
      R.Malformed = true;
      return R;
    }
  }
  if (V.Bad) {
    R.Malformed = true;
    return R;
  }
  if (V.Short) {
    R.Timed = false;
    return R;
  }
  R.Len = V.Off;
  return R;
}

} // namespace

const char *jdrag::profiler::eventKindName(EventKind K) {
  auto I = static_cast<std::size_t>(K);
  return I < NumEventKinds ? EventKindNames[I] : "?";
}

//===----------------------------------------------------------------------===//
// Chunk compression (v6)
//===----------------------------------------------------------------------===//

bool jdrag::profiler::chunkPayloadBytes(const ChunkHeader &H,
                                        const std::byte *Payload,
                                        std::vector<std::uint8_t> &Scratch,
                                        std::span<const std::byte> &Out) {
  std::uint32_t Wire = chunkWireBytes(H.PayloadBytes);
  if (!chunkCompressed(H.PayloadBytes)) {
    Out = {Payload, Wire};
    return true;
  }
  if (!support::lzDecompress(Payload, Wire, Scratch, MaxChunkPayload))
    return false;
  Out = {reinterpret_cast<const std::byte *>(Scratch.data()),
         Scratch.size()};
  return true;
}

std::span<const std::byte>
ChunkCompressor::transform(const std::byte *Data, std::size_t Size) {
  if (Size < sizeof(ChunkHeader))
    return {};
  ChunkHeader H;
  std::memcpy(&H, Data, sizeof(H));

  if (H.Magic == FooterMagic) {
    // The footer frame itself stays uncompressed (it is small, and
    // salvage resynchronizes on its magic), but its entries must index
    // the stream this compressor actually produced: rewrite Offset and
    // PayloadBytes from the per-chunk wire records, recompute the
    // payload CRC, and leave everything else (Seq = entry count, times,
    // per-chunk payload CRCs over the *uncompressed* bytes) alone.
    if (H.PayloadBytes < 8 || H.PayloadBytes > MaxChunkPayload ||
        Size != sizeof(ChunkHeader) + H.PayloadBytes + 8 ||
        (H.PayloadBytes - 8) % sizeof(WireIndexEntry) != 0)
      return {};
    Scratch.assign(Data, Data + Size);
    std::byte *Body = Scratch.data() + sizeof(ChunkHeader);
    std::size_t Count = (H.PayloadBytes - 8) / sizeof(WireIndexEntry);
    std::size_t Wi = 0;
    for (std::size_t I = 0; I != Count; ++I) {
      WireIndexEntry W;
      std::memcpy(&W, Body + 8 + I * sizeof(W), sizeof(W));
      // Both lists are in ascending Seq order; entries for chunks this
      // compressor never saw (shed upstream, pre-spool) keep their
      // producer values -- readers catch the mismatch and rebuild.
      while (Wi < Wire.size() && Wire[Wi].Seq < W.Seq)
        ++Wi;
      if (Wi < Wire.size() && Wire[Wi].Seq == W.Seq) {
        W.Offset = Wire[Wi].Offset;
        W.PayloadBytes = Wire[Wi].Field;
        std::memcpy(Body + 8 + I * sizeof(W), &W, sizeof(W));
      }
    }
    H.Crc = support::crc32c(Body, H.PayloadBytes);
    std::memcpy(Scratch.data(), &H, sizeof(H));
    Offset += Size;
    return Scratch;
  }

  if (H.Magic != ChunkMagic)
    return {};
  std::uint32_t WireLen = chunkWireBytes(H.PayloadBytes);
  if (WireLen == 0 || WireLen > MaxChunkPayload ||
      Size != sizeof(ChunkHeader) + WireLen)
    return {};
  const std::byte *Payload = Data + sizeof(ChunkHeader);
  std::uint32_t NewField = H.PayloadBytes;
  std::span<const std::byte> Frame(Data, Size);
  if (!chunkCompressed(H.PayloadBytes)) {
    RawBytes += WireLen;
    Lz = support::lzCompress(Payload, WireLen);
    if (!Lz.empty()) {
      // lzCompress only returns a block strictly smaller than the
      // input, so the flag bit never collides with the length bits.
      NewField = static_cast<std::uint32_t>(Lz.size()) | ChunkCompressedBit;
      Scratch.resize(sizeof(ChunkHeader) + Lz.size());
      ChunkHeader NH = H;
      NH.PayloadBytes = NewField;
      std::memcpy(Scratch.data(), &NH, sizeof(NH));
      std::memcpy(Scratch.data() + sizeof(NH), Lz.data(), Lz.size());
      Frame = Scratch;
    }
  } else {
    // Already-compressed input (a pre-compressed frame passing through,
    // e.g. a spool being re-sunk): forward verbatim.
    RawBytes += WireLen;
  }
  Wire.push_back({H.Seq, Offset, NewField});
  WireBytes += chunkWireBytes(NewField);
  Offset += Frame.size();
  return Frame;
}

//===----------------------------------------------------------------------===//
// FileEventSink
//===----------------------------------------------------------------------===//

FileEventSink::~FileEventSink() {
  if (F)
    std::fclose(F);
}

bool FileEventSink::open(const std::string &Path, Options O) {
  if (F)
    return false; // double-open: reject; the first stream stays usable
  Opt = O;
  F = std::fopen(Path.c_str(), "wb");
  if (!F) {
    LastErr = errno;
    return Ok = false;
  }
  std::uint32_t Version = static_cast<std::uint32_t>(Opt.Format);
  std::uint32_t Reserved = 0;
  Ok = std::fwrite(&StreamMagic, sizeof(StreamMagic), 1, F) == 1 &&
       std::fwrite(&Version, sizeof(Version), 1, F) == 1 &&
       std::fwrite(&Reserved, sizeof(Reserved), 1, F) == 1;
  // v5+ header extension: the sampling params that scale this stream.
  if (Ok && Opt.Format >= WireFormat::V5)
    Ok = std::fwrite(&Opt.Sampling.SampleBytes, 8, 1, F) == 1 &&
         std::fwrite(&Opt.Sampling.SampleSeed, 8, 1, F) == 1;
  if (!Ok)
    LastErr = errno;
  if (Ok && Opt.Compress && Opt.Format >= WireFormat::V6)
    Comp = std::make_unique<ChunkCompressor>();
  return Ok;
}

std::size_t FileEventSink::rawWrite(const std::byte *Data, std::size_t Size) {
  return std::fwrite(Data, 1, Size, F);
}

bool FileEventSink::durableFlush() {
  if (std::fflush(F) != 0) {
    LastErr = errno;
    return false;
  }
#ifndef _WIN32
  if (fsync(fileno(F)) != 0) {
    LastErr = errno;
    return false;
  }
#endif
  return true;
}

bool FileEventSink::writeChunk(const std::byte *Data, std::size_t Size) {
  if (!F || !Ok)
    return false;
  if (Comp) {
    // Compress here, not in EventBuffer::flush: under AsyncEventSink
    // this runs on the background writer thread, keeping the transform
    // off the VM's critical path.
    std::span<const std::byte> T = Comp->transform(Data, Size);
    if (T.empty()) {
      LastErr = EINVAL; // structurally invalid frame; never expected
      return Ok = false;
    }
    return writeFrame(T.data(), T.size());
  }
  return writeFrame(Data, Size);
}

bool FileEventSink::writeFrame(const std::byte *Data, std::size_t Size) {
  std::size_t Off = 0;
  std::uint32_t Attempts = 0;
  while (Off < Size) {
    errno = 0;
    std::size_t N = rawWrite(Data + Off, Size - Off);
    Off += N;
    if (Off == Size)
      break;
    int E = errno;
    LastErr = E;
    // A short write that made progress is always worth continuing;
    // EINTR/EAGAIN without progress is transient up to the retry
    // budget. Anything else (ENOSPC, EIO) is fatal for this sink.
    bool Transient = N > 0 || E == EINTR || E == EAGAIN || E == EWOULDBLOCK;
    if (N > 0) {
      Attempts = 0;
      continue;
    }
    if (!Transient || Attempts >= Opt.Backoff.MaxRetries)
      return Ok = false;
    ++Attempts;
    ++Retries;
    std::clearerr(F);
    // Exponential backoff, capped well under human-visible latency.
    std::this_thread::sleep_for(std::chrono::microseconds(
        backoffDelayMicros(Opt.Backoff, Attempts, Retries)));
  }
  Bytes += Size;
  ++Chunks;
  if (Opt.FsyncEveryChunks && Chunks % Opt.FsyncEveryChunks == 0 &&
      !durableFlush())
    return Ok = false;
  return true;
}

bool FileEventSink::finish() {
  if (!F)
    return Ok;
  if (Ok && !durableFlush())
    Ok = false;
  std::fclose(F);
  F = nullptr;
  return Ok;
}

//===----------------------------------------------------------------------===//
// EventBuffer
//===----------------------------------------------------------------------===//

EventBuffer::EventBuffer(EventSink &Sink, std::size_t ChunkBytes,
                         bool Checksum, WireFormat Format)
    : Sink(Sink), ChunkBytes(ChunkBytes ? ChunkBytes : DefaultChunkBytes),
      Format(Format), Checksum(Checksum) {
  Chunk.reserve(sizeof(ChunkHeader) + this->ChunkBytes);
  beginChunk();
}

void EventBuffer::beginChunk() {
  Chunk.clear();
  Chunk.resize(sizeof(ChunkHeader)); // placeholder, filled at flush
  if (chunkSelfContained(Format)) {
    // Every v4/v5 chunk is self-contained: the delta chain restarts, so
    // the first timed record carries its absolute time.
    LastTime = 0;
    ChunkRecords = 0;
    ChunkHasTime = false;
    ChunkFirstTime = ChunkLastTime = 0;
    ChunkFirstRecord = Events;
  }
}

void EventBuffer::writeBytes(const void *Data, std::size_t Size) {
  const auto *Src = static_cast<const std::byte *>(Data);
  std::size_t Cap = sizeof(ChunkHeader) + ChunkBytes;
  while (Size) {
    std::size_t Room = Cap - Chunk.size();
    std::size_t N = Size < Room ? Size : Room;
    Chunk.insert(Chunk.end(), Src, Src + N);
    Src += N;
    Size -= N;
    if (Chunk.size() == Cap)
      flush(); // dropped chunks are accounted; keep emitting regardless
  }
}

void EventBuffer::writeEventV3(const EventRecord &E) {
  // Largest non-site record: tag + 5 varints -- comfortably under 64.
  std::uint8_t Buf[1 + 5 * MaxVarintBytes];
  std::size_t N = 0;
  std::uint8_t Tag = E.Kind;
  auto Kind = E.kind();

  // v4/v5 keep chunks record-aligned, and the delta below depends on
  // which chunk the record lands in (the chain restarts per chunk) --
  // so the chunk decision comes first: if the worst-case record might
  // not fit, flush now and encode against the fresh chunk's zero base.
  // Costs at most 50 slack bytes per chunk.
  if (chunkSelfContained(Format) && Chunk.size() > sizeof(ChunkHeader) &&
      sizeof(ChunkHeader) + ChunkBytes - Chunk.size() < sizeof(Buf))
    flush();

  // Every timed record carries a zigzag delta against the previous one.
  std::int64_t Delta = static_cast<std::int64_t>(E.Time - LastTime);
  LastTime = E.Time;

  switch (Kind) {
  case EventKind::Alloc:
    Tag |= (E.Flags & 1) ? AllocIsArrayBit : 0;
    Tag |= static_cast<std::uint8_t>(E.Sub << AllocKindShift);
    Buf[N++] = Tag;
    N += putSvar(Buf + N, Delta);
    N += putUvar(Buf + N, E.Id);
    N += putUvar(Buf + N, E.Arg0);
    N += putUvar(Buf + N, E.Arg1);
    N += putUvar(Buf + N, biasSite(E.Site));
    break;
  case EventKind::Use:
    Tag |= (E.Flags & 1) ? UseDuringInitBit : 0;
    Tag |= static_cast<std::uint8_t>(E.Sub << UseKindShift);
    Buf[N++] = Tag;
    N += putSvar(Buf + N, Delta);
    N += putUvar(Buf + N, E.Id);
    N += putUvar(Buf + N, biasSite(E.Site));
    break;
  case EventKind::GCEnd:
    Buf[N++] = Tag;
    N += putSvar(Buf + N, Delta);
    N += putUvar(Buf + N, E.Arg0);
    N += putUvar(Buf + N, E.Arg1);
    break;
  case EventKind::Collect:
  case EventKind::Survivor:
    Buf[N++] = Tag;
    N += putSvar(Buf + N, Delta);
    N += putUvar(Buf + N, E.Id);
    break;
  case EventKind::DeepGCEnd:
  case EventKind::Terminate:
    Buf[N++] = Tag;
    N += putSvar(Buf + N, Delta);
    break;
  case EventKind::DefineSite:
    // DefineSite goes through writeSite(); never reaches here.
    return;
  }
  if (chunkSelfContained(Format))
    appendRecordV4(Buf, N, /*Timed=*/true, E.Time);
  else
    writeBytes(Buf, N);
}

void EventBuffer::appendRecordV4(const void *Data, std::size_t Size,
                                 bool Timed, ByteTime Time) {
  // Timed records already secured their room in writeEventV3 (the
  // chunk decision had to precede the delta encoding); untimed site
  // records are placement-independent, so they flush-on-demand here.
  std::size_t Cap = sizeof(ChunkHeader) + ChunkBytes;
  if (!Timed && Chunk.size() > sizeof(ChunkHeader) &&
      Chunk.size() + Size > Cap)
    flush();
  if (ChunkRecords == 0)
    ChunkFirstRecord = Events; // Events is this record's global index
  ++ChunkRecords;
  if (Timed) {
    if (!ChunkHasTime) {
      ChunkHasTime = true;
      ChunkFirstTime = Time;
    }
    ChunkLastTime = Time;
  }
  const auto *Src = static_cast<const std::byte *>(Data);
  Chunk.insert(Chunk.end(), Src, Src + Size);
  // A record bigger than the budget gets an oversized chunk of its
  // own; either way the chunk ends at a record boundary.
  if (Chunk.size() >= Cap)
    flush();
}

void EventBuffer::writeEvent(const EventRecord &E) {
  if (Format == WireFormat::V2)
    writeBytes(&E, sizeof(E));
  else
    writeEventV3(E);
  ++Events;
}

void EventBuffer::writeSite(SiteId Id, std::span<const SiteFrame> Frames) {
  if (Format == WireFormat::V2) {
    EventRecord E;
    E.Kind = static_cast<std::uint8_t>(EventKind::DefineSite);
    E.Site = Id;
    E.Arg0 = Frames.size();
    writeBytes(&E, sizeof(E));
    for (const SiteFrame &F : Frames) {
      WireFrame W{F.Method.Index, F.Pc, F.Line};
      writeBytes(&W, sizeof(W));
    }
  } else if (Format == WireFormat::V3) {
    // DefineSite is untimed (Time is always 0) and does NOT participate
    // in the time-delta chain: sites intern lazily, so their position
    // in the stream is not meaningful to the clock.
    std::uint8_t Buf[1 + 2 * MaxVarintBytes];
    std::size_t N = 0;
    Buf[N++] = static_cast<std::uint8_t>(EventKind::DefineSite);
    N += putUvar(Buf + N, Id);
    N += putUvar(Buf + N, Frames.size());
    writeBytes(Buf, N);
    for (const SiteFrame &F : Frames) {
      std::uint8_t FB[3 * MaxVarintBytes];
      std::size_t FN = 0;
      FN += putUvar(FB + FN, F.Method.Index);
      FN += putUvar(FB + FN, F.Pc);
      FN += putUvar(FB + FN, F.Line);
      writeBytes(FB, FN);
    }
  } else {
    // v4: same bytes as v3, but staged whole so the record lands in
    // exactly one chunk.
    SiteScratch.clear();
    auto Put = [&](const std::uint8_t *P, std::size_t N) {
      SiteScratch.insert(SiteScratch.end(),
                         reinterpret_cast<const std::byte *>(P),
                         reinterpret_cast<const std::byte *>(P) + N);
    };
    std::uint8_t Buf[1 + 2 * MaxVarintBytes];
    std::size_t N = 0;
    Buf[N++] = static_cast<std::uint8_t>(EventKind::DefineSite);
    N += putUvar(Buf + N, Id);
    N += putUvar(Buf + N, Frames.size());
    Put(Buf, N);
    for (const SiteFrame &F : Frames) {
      std::uint8_t FB[3 * MaxVarintBytes];
      std::size_t FN = 0;
      FN += putUvar(FB + FN, F.Method.Index);
      FN += putUvar(FB + FN, F.Pc);
      FN += putUvar(FB + FN, F.Line);
      Put(FB, FN);
    }
    appendRecordV4(SiteScratch.data(), SiteScratch.size(), /*Timed=*/false,
                   0);
  }
  ++Events;
}

bool EventBuffer::flush() {
  std::size_t Payload = Chunk.size() - sizeof(ChunkHeader);
  if (!Payload)
    return !SinkFailed;

  ChunkHeader H;
  H.Magic = ChunkMagic;
  H.Seq = NextSeq++;
  H.PayloadBytes = static_cast<std::uint32_t>(Payload);
  H.Crc = Checksum
              ? support::crc32c(Chunk.data() + sizeof(ChunkHeader), Payload)
              : 0;
  std::memcpy(Chunk.data(), &H, sizeof(H));

  bool Accepted =
      !SinkFailed && Sink.writeChunk(Chunk.data(), Chunk.size());
  if (Accepted) {
    ++Health.ChunksWritten;
    Health.BytesWritten += Chunk.size();
    if (chunkSelfContained(Format)) {
      ChunkIndexEntry E;
      E.Offset = StreamOffset;
      E.Seq = H.Seq;
      E.PayloadBytes = H.PayloadBytes;
      E.Crc = H.Crc;
      E.RecordCount = ChunkRecords;
      E.FirstTime = ChunkHasTime ? ChunkFirstTime : 0;
      E.LastTime = ChunkHasTime ? ChunkLastTime : 0;
      E.FirstRecord = ChunkFirstRecord;
      Index.push_back(E);
      StreamOffset += Chunk.size();
    }
  } else {
    ++Health.ChunksDropped;
    Health.BytesDropped += Chunk.size();
    if (!SinkFailed) {
      SinkFailed = true;
      if (!Warned) {
        Warned = true;
        int E = Sink.lastErrno();
        std::fprintf(stderr,
                     "jdrag: warning: event-stream sink write failed%s%s; "
                     "continuing with drop accounting, the recording will "
                     "be incomplete\n",
                     E ? ": " : "", E ? std::strerror(E) : "");
      }
    }
  }
  beginChunk();
  return Accepted;
}

bool EventBuffer::finishStream() {
  bool FlushOk = flush();
  if (!chunkSelfContained(Format) || FooterWritten)
    return FlushOk;
  FooterWritten = true;
  // A footer asserts "these chunks are all in the stream, here" -- on a
  // stream that already lost chunks that would be a lie, so a damaged
  // stream simply ends footerless (readers rebuild the index; salvage
  // re-emits one).
  if (SinkFailed || !health().intact())
    return FlushOk;
  std::vector<std::byte> Footer = encodeChunkIndexFooter(Index, Events);
  bool Accepted = Sink.writeChunk(Footer.data(), Footer.size());
  if (Accepted) {
    ++Health.ChunksWritten;
    Health.BytesWritten += Footer.size();
  } else {
    ++Health.ChunksDropped;
    Health.BytesDropped += Footer.size();
    SinkFailed = true;
  }
  return FlushOk && Accepted;
}

StreamHealth EventBuffer::health() const {
  StreamHealth H = Health;
  H.Retries = Sink.retries();
  H.LastErrno = Sink.lastErrno();
  H.SpooledChunks = Sink.spooledChunks();
  H.SpooledBytes = Sink.spooledBytes();
  H.Failovers = Sink.failovers();
  // Chunks a sink accepted but later shed (async queue under drop
  // policy, background write failure) count as dropped end-to-end.
  H.ChunksDropped += Sink.droppedChunks();
  H.BytesDropped += Sink.droppedBytes();
  std::uint64_t DC = Sink.droppedChunks();
  std::uint64_t DB = Sink.droppedBytes();
  H.ChunksWritten -= DC < H.ChunksWritten ? DC : H.ChunksWritten;
  H.BytesWritten -= DB < H.BytesWritten ? DB : H.BytesWritten;
  return H;
}

//===----------------------------------------------------------------------===//
// StreamDecoder (record layer)
//===----------------------------------------------------------------------===//

bool StreamDecoder::fail(std::string Msg) {
  Failed = true;
  if (Error.empty())
    Error = std::move(Msg);
  return false;
}

bool StreamDecoder::decodeV2(const std::byte *Cur, std::size_t Avail,
                             std::size_t &Off) {
  while (true) {
    if (Avail - Off < sizeof(EventRecord))
      break;
    EventRecord E;
    std::memcpy(&E, Cur + Off, sizeof(E));
    if (E.Kind >= NumEventKinds)
      return fail("malformed event stream: unknown event kind " +
                  std::to_string(E.Kind));
    if (E.kind() == EventKind::DefineSite) {
      if (E.Arg0 > MaxWireFrames)
        return fail("malformed event stream: site with " +
                    std::to_string(E.Arg0) + " frames");
      std::size_t Payload =
          static_cast<std::size_t>(E.Arg0) * sizeof(WireFrame);
      if (Avail - Off < sizeof(EventRecord) + Payload)
        break;
      FrameScratch.clear();
      const std::byte *P = Cur + Off + sizeof(EventRecord);
      for (std::uint64_t I = 0; I != E.Arg0; ++I) {
        WireFrame W;
        std::memcpy(&W, P + I * sizeof(WireFrame), sizeof(W));
        FrameScratch.push_back({ir::MethodId(W.Method), W.Pc, W.Line});
      }
      C.onSite(E.Site, FrameScratch);
      Off += sizeof(EventRecord) + Payload;
    } else {
      C.onEvent(E);
      Off += sizeof(EventRecord);
    }
    ++Events;
  }
  return true;
}

bool StreamDecoder::decodeV3(const std::byte *Cur, std::size_t Avail,
                             std::size_t &Off) {
  while (Off < Avail) {
    // Batch fast path: with room for any complete non-site record, the
    // varints decode without per-byte bounds checks -- the Short
    // machinery below only matters near the end of the input.
    if (Batch && Avail - Off >= MaxV3EventBytes) {
      std::uint8_t Tag = std::to_integer<std::uint8_t>(Cur[Off]);
      std::uint8_t KindBits = Tag & TagKindMask;
      auto Kind = static_cast<EventKind>(KindBits);
      if (Kind != EventKind::DefineSite) {
        FastVarReader R{Cur + Off + 1};
        EventRecord E;
        E.Kind = KindBits;
        E.Time = LastTime + static_cast<std::uint64_t>(R.svar());
        switch (Kind) {
        case EventKind::Alloc:
          if (Tag & AllocSpareMask)
            return fail("malformed event stream: spare tag bits set on "
                        "alloc record");
          E.Flags = (Tag & AllocIsArrayBit) ? 1 : 0;
          E.Sub = static_cast<std::uint8_t>((Tag >> AllocKindShift) & 0x3);
          E.Id = R.uvar();
          E.Arg0 = R.uvar();
          E.Arg1 = R.uvar();
          E.Site = static_cast<SiteId>(R.uvar32() - 1);
          break;
        case EventKind::Use:
          if (Tag & UseSpareMask)
            return fail("malformed event stream: spare tag bits set on "
                        "use record");
          E.Flags = (Tag & UseDuringInitBit) ? 1 : 0;
          E.Sub = static_cast<std::uint8_t>((Tag >> UseKindShift) & 0x7);
          if (E.Sub == 7)
            return fail("malformed event stream: unknown use kind 7");
          E.Id = R.uvar();
          E.Site = static_cast<SiteId>(R.uvar32() - 1);
          break;
        case EventKind::GCEnd:
          if (Tag & ~TagKindMask)
            return fail("malformed event stream: spare tag bits set on "
                        "gc-end record");
          E.Arg0 = R.uvar();
          E.Arg1 = R.uvar();
          break;
        case EventKind::Collect:
        case EventKind::Survivor:
          if (Tag & ~TagKindMask)
            return fail("malformed event stream: spare tag bits set on " +
                        std::string(eventKindName(Kind)) + " record");
          E.Id = R.uvar();
          break;
        case EventKind::DeepGCEnd:
        case EventKind::Terminate:
          if (Tag & ~TagKindMask)
            return fail("malformed event stream: spare tag bits set on " +
                        std::string(eventKindName(Kind)) + " record");
          break;
        case EventKind::DefineSite:
          break; // unreachable: filtered above
        }
        if (R.Bad)
          return fail("malformed event stream: bad varint in " +
                      std::string(eventKindName(Kind)) + " record");
        LastTime = E.Time;
        C.onEvent(E);
        ++Events;
        Off += 1 + R.Off;
        continue;
      }
    }

    VarReader R{Cur + Off, Avail - Off};
    std::uint8_t Tag;
    R.byte(Tag);
    std::uint8_t KindBits = Tag & TagKindMask;
    auto Kind = static_cast<EventKind>(KindBits);

    EventRecord E;
    E.Kind = KindBits;
    ByteTime NewLast = LastTime;

    // Decode the whole record before committing anything: if the reader
    // runs short the record straddles the feed boundary and we retry it
    // once more bytes arrive, so no state (LastTime, Events, consumer
    // dispatch) may change until the record is complete.
    bool IsSite = Kind == EventKind::DefineSite;
    SiteId SiteDef = InvalidSite;
    std::uint64_t FrameCount = 0;

    if (IsSite) {
      if (Tag & ~TagKindMask)
        return fail("malformed event stream: spare tag bits set on "
                    "define-site record");
      SiteDef = R.uvar32();
      FrameCount = R.uvar();
      if (!R.Short && !R.Bad && FrameCount > MaxWireFrames)
        return fail("malformed event stream: site with " +
                    std::to_string(FrameCount) + " frames");
      FrameScratch.clear();
      for (std::uint64_t I = 0; I != FrameCount && !R.Short && !R.Bad; ++I) {
        std::uint32_t Method = R.uvar32();
        std::uint32_t Pc = R.uvar32();
        std::uint32_t Line = R.uvar32();
        FrameScratch.push_back({ir::MethodId(Method), Pc, Line});
      }
    } else {
      std::int64_t Delta = R.svar();
      NewLast = LastTime + static_cast<std::uint64_t>(Delta);
      E.Time = NewLast;
      switch (Kind) {
      case EventKind::Alloc:
        if (Tag & AllocSpareMask)
          return fail("malformed event stream: spare tag bits set on "
                      "alloc record");
        E.Flags = (Tag & AllocIsArrayBit) ? 1 : 0;
        E.Sub = static_cast<std::uint8_t>((Tag >> AllocKindShift) & 0x3);
        E.Id = R.uvar();
        E.Arg0 = R.uvar();
        E.Arg1 = R.uvar();
        E.Site = static_cast<SiteId>(R.uvar32() - 1);
        break;
      case EventKind::Use:
        if (Tag & UseSpareMask)
          return fail("malformed event stream: spare tag bits set on "
                      "use record");
        E.Flags = (Tag & UseDuringInitBit) ? 1 : 0;
        E.Sub = static_cast<std::uint8_t>((Tag >> UseKindShift) & 0x7);
        if (E.Sub == 7 && !R.Short)
          return fail("malformed event stream: unknown use kind 7");
        E.Id = R.uvar();
        E.Site = static_cast<SiteId>(R.uvar32() - 1);
        break;
      case EventKind::GCEnd:
        if (Tag & ~TagKindMask)
          return fail("malformed event stream: spare tag bits set on "
                      "gc-end record");
        E.Arg0 = R.uvar();
        E.Arg1 = R.uvar();
        break;
      case EventKind::Collect:
      case EventKind::Survivor:
        if (Tag & ~TagKindMask)
          return fail("malformed event stream: spare tag bits set on " +
                      std::string(eventKindName(Kind)) + " record");
        E.Id = R.uvar();
        break;
      case EventKind::DeepGCEnd:
      case EventKind::Terminate:
        if (Tag & ~TagKindMask)
          return fail("malformed event stream: spare tag bits set on " +
                      std::string(eventKindName(Kind)) + " record");
        break;
      case EventKind::DefineSite:
        break; // unreachable: handled above
      }
    }

    // Malformation wins over shortness: Bad never depends on bytes
    // that have not arrived yet (a reader that ran short after hitting
    // an overlong varint is still malformed, not merely incomplete).
    if (R.Bad)
      return fail("malformed event stream: bad varint in " +
                  std::string(eventKindName(Kind)) + " record");
    if (R.Short)
      break; // partial record at feed boundary: wait for more bytes

    // Commit.
    if (IsSite) {
      C.onSite(SiteDef, FrameScratch);
    } else {
      LastTime = NewLast;
      C.onEvent(E);
    }
    ++Events;
    Off += R.Off;
  }
  return true;
}

bool StreamDecoder::feed(const std::byte *Data, std::size_t Size) {
  if (Failed)
    return false;

  // Work over the concatenation of leftover bytes and the new slice
  // without copying the new slice unless a record straddles its end.
  const std::byte *Cur = Data;
  std::size_t Avail = Size;
  if (!Pending.empty()) {
    Pending.insert(Pending.end(), Data, Data + Size);
    Cur = Pending.data();
    Avail = Pending.size();
  }

  std::size_t Off = 0;
  if (!(Format == WireFormat::V2 ? decodeV2(Cur, Avail, Off)
                                 : decodeV3(Cur, Avail, Off)))
    return false;

  // Stash the incomplete tail for the next feed.
  if (!Pending.empty()) {
    Pending.erase(Pending.begin(),
                  Pending.begin() + static_cast<std::ptrdiff_t>(Off));
  } else if (Off < Avail) {
    Pending.assign(Cur + Off, Cur + Avail);
  }
  return true;
}

//===----------------------------------------------------------------------===//
// FrameDecoder (chunk layer)
//===----------------------------------------------------------------------===//

bool FrameDecoder::fail(std::string Msg) {
  Failed = true;
  if (Error.empty())
    Error = std::move(Msg);
  return false;
}

bool FrameDecoder::feed(const std::byte *Data, std::size_t Size) {
  if (Failed)
    return false;

  // Same zero-copy-unless-straddling strategy as the record layer; on
  // the live path each feed is exactly one whole frame, so Pending
  // normally stays empty.
  const std::byte *Cur = Data;
  std::size_t Avail = Size;
  if (!Pending.empty()) {
    Pending.insert(Pending.end(), Data, Data + Size);
    Cur = Pending.data();
    Avail = Pending.size();
  }

  std::size_t Off = 0;
  while (Avail - Off >= sizeof(ChunkHeader)) {
    ChunkHeader H;
    std::memcpy(&H, Cur + Off, sizeof(H));
    if (chunkSelfContained(Format) && H.Magic == FooterMagic) {
      // Terminal chunk index footer: CRC-verify and swallow it -- its
      // contents are a seek index, not stream data.
      if (H.PayloadBytes > MaxChunkPayload)
        return fail("corrupt event stream: implausible chunk index "
                    "footer length");
      if (H.Seq != NextSeq)
        return fail("corrupt event stream: chunk index footer sequence "
                    "mismatch");
      std::size_t Block = sizeof(ChunkHeader) + H.PayloadBytes + 8;
      if (Avail - Off < Block)
        break; // partial footer: wait for more bytes
      const std::byte *Payload = Cur + Off + sizeof(ChunkHeader);
      std::uint32_t Crc = support::crc32c(Payload, H.PayloadBytes);
      std::uint32_t Bytes = 0, Tail = 0;
      std::memcpy(&Bytes, Payload + H.PayloadBytes, 4);
      std::memcpy(&Tail, Payload + H.PayloadBytes + 4, 4);
      if (Crc != H.Crc || Tail != FooterTailMagic || Bytes != Block)
        return fail("corrupt event stream: damaged chunk index footer");
      FooterSeen = true;
      Off += Block;
      continue;
    }
    if (FooterSeen)
      return fail("corrupt event stream: data after the chunk index "
                  "footer");
    if (H.Magic != ChunkMagic)
      return fail("corrupt event stream: bad chunk magic at chunk " +
                  std::to_string(NextSeq));
    // v6: bit 31 of the length field flags a compressed payload and the
    // low bits are the on-wire byte count. In pre-v6 streams the raw
    // field is the length, so a flagged frame fails the bound below --
    // the intended clean refusal of old readers.
    bool Compressed =
        Format >= WireFormat::V6 && chunkCompressed(H.PayloadBytes);
    std::uint32_t WireLen =
        Compressed ? chunkWireBytes(H.PayloadBytes) : H.PayloadBytes;
    if (WireLen == 0 || WireLen > MaxChunkPayload)
      return fail("corrupt event stream: chunk " + std::to_string(NextSeq) +
                  " has implausible payload length " +
                  std::to_string(H.PayloadBytes));
    if (H.Seq != NextSeq)
      return fail("corrupt event stream: chunk sequence jumped from " +
                  std::to_string(NextSeq) + " to " + std::to_string(H.Seq) +
                  " (dropped or reordered chunks)");
    if (Avail - Off < sizeof(ChunkHeader) + WireLen)
      break; // partial payload: wait for more bytes
    const std::byte *Payload = Cur + Off + sizeof(ChunkHeader);
    // Decompress once, at chunk granularity, before the CRC: the CRC
    // covers the *uncompressed* payload, so integrity semantics (and
    // every salvage verdict built on them) are unchanged by v6.
    std::span<const std::byte> Body(Payload, WireLen);
    if (Compressed && !chunkPayloadBytes(H, Payload, Inflate, Body))
      return fail("corrupt event stream: chunk " + std::to_string(NextSeq) +
                  " has a malformed compressed payload");
    std::uint32_t Crc = support::crc32c(Body.data(), Body.size());
    if (Crc != H.Crc)
      return fail("corrupt event stream: chunk " + std::to_string(NextSeq) +
                  " CRC mismatch (stored " + std::to_string(H.Crc) +
                  ", computed " + std::to_string(Crc) + ")");
    if (chunkSelfContained(Format))
      Records.resetTimeBase(); // every v4+ chunk is self-contained
    if (!Records.feed(Body.data(), Body.size())) {
      Failed = true;
      return false; // record-layer error() is surfaced by error()
    }
    if (chunkSelfContained(Format) && !Records.atRecordBoundary())
      return fail("corrupt event stream: record straddles a chunk "
                  "boundary in self-contained chunk " +
                  std::to_string(NextSeq));
    ++Chunks;
    ++NextSeq;
    Off += sizeof(ChunkHeader) + WireLen;
  }

  if (!Pending.empty()) {
    Pending.erase(Pending.begin(),
                  Pending.begin() + static_cast<std::ptrdiff_t>(Off));
  } else if (Off < Avail) {
    Pending.assign(Cur + Off, Cur + Avail);
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Chunk index footer
//===----------------------------------------------------------------------===//

std::vector<std::byte> jdrag::profiler::encodeChunkIndexFooter(
    std::span<const ChunkIndexEntry> Entries, std::uint64_t TotalRecords) {
  std::size_t Payload = 8 + Entries.size() * sizeof(WireIndexEntry);
  std::vector<std::byte> Out(sizeof(ChunkHeader) + Payload + 8);
  std::byte *Body = Out.data() + sizeof(ChunkHeader);
  std::memcpy(Body, &TotalRecords, 8);
  std::size_t O = 8;
  for (const ChunkIndexEntry &E : Entries) {
    WireIndexEntry W;
    W.Offset = E.Offset;
    W.Seq = E.Seq;
    W.PayloadBytes = E.PayloadBytes;
    W.Crc = E.Crc;
    W.RecordCount = E.RecordCount;
    W.FirstTime = E.FirstTime;
    W.LastTime = E.LastTime;
    W.FirstRecord = E.FirstRecord;
    std::memcpy(Body + O, &W, sizeof(W));
    O += sizeof(W);
  }
  ChunkHeader H;
  H.Magic = FooterMagic;
  H.Seq = static_cast<std::uint32_t>(Entries.size());
  H.PayloadBytes = static_cast<std::uint32_t>(Payload);
  H.Crc = support::crc32c(Body, Payload);
  std::memcpy(Out.data(), &H, sizeof(H));
  std::uint32_t Bytes = static_cast<std::uint32_t>(Out.size());
  std::uint32_t Tail = FooterTailMagic;
  std::memcpy(Out.data() + Out.size() - 8, &Bytes, 4);
  std::memcpy(Out.data() + Out.size() - 4, &Tail, 4);
  return Out;
}

std::size_t
jdrag::profiler::footerBlockSize(std::span<const std::byte> Stream) {
  constexpr std::size_t MinBlock = sizeof(ChunkHeader) + 8 + 8;
  if (Stream.size() < MinBlock)
    return 0;
  std::uint32_t Bytes = 0, Tail = 0;
  std::memcpy(&Bytes, Stream.data() + Stream.size() - 8, 4);
  std::memcpy(&Tail, Stream.data() + Stream.size() - 4, 4);
  if (Tail != FooterTailMagic || Bytes < MinBlock || Bytes > Stream.size())
    return 0;
  ChunkHeader H;
  std::memcpy(&H, Stream.data() + (Stream.size() - Bytes), sizeof(H));
  if (H.Magic != FooterMagic)
    return 0;
  if (sizeof(ChunkHeader) + H.PayloadBytes + 8 != Bytes)
    return 0;
  return Bytes;
}

namespace {

/// Parses and CRC-verifies one footer block into \p Idx; \p DataEnd
/// receives the on-wire offset just past the last indexed chunk (the
/// sum of the entries' extents, which callers with the full stream in
/// hand check against the footer's actual start). The block's size was
/// already validated against its header by footerBlockSize.
bool parseFooterBlock(const std::byte *Block, ChunkIndex &Idx,
                      std::uint64_t &DataEnd) {
  ChunkHeader H;
  std::memcpy(&H, Block, sizeof(H));
  const std::byte *Body = Block + sizeof(ChunkHeader);
  if (support::crc32c(Body, H.PayloadBytes) != H.Crc)
    return false;
  if (H.PayloadBytes < 8 ||
      (H.PayloadBytes - 8) % sizeof(WireIndexEntry) != 0)
    return false;
  std::size_t Count = (H.PayloadBytes - 8) / sizeof(WireIndexEntry);
  if (Count != H.Seq)
    return false;

  Idx.FromFooter = true;
  std::memcpy(&Idx.TotalRecords, Body, 8);
  Idx.Entries.reserve(Count);
  // Structural validation up front: entries must tile the data region
  // exactly (contiguous, in sequence, plausible sizes), so readers can
  // index the stream through them without further bounds checks. A
  // footer can still lie about chunk *contents* (counts, times, CRCs);
  // decoding verifies those and falls back to a rebuilt index.
  std::uint64_t Off = 0;
  for (std::size_t I = 0; I != Count; ++I) {
    WireIndexEntry W;
    std::memcpy(&W, Body + 8 + I * sizeof(W), sizeof(W));
    // v6 entries carry the on-wire field (compressed flag + compressed
    // length); the tiling below is over on-wire bytes either way.
    std::uint32_t WireLen = chunkWireBytes(W.PayloadBytes);
    if (W.Offset != Off || W.Seq != I || WireLen == 0 ||
        WireLen > MaxChunkPayload)
      return false;
    Off += sizeof(ChunkHeader) + WireLen;
    ChunkIndexEntry E;
    E.Offset = W.Offset;
    E.Seq = W.Seq;
    E.PayloadBytes = W.PayloadBytes;
    E.Crc = W.Crc;
    E.RecordCount = W.RecordCount;
    E.FirstTime = W.FirstTime;
    E.LastTime = W.LastTime;
    E.FirstRecord = W.FirstRecord;
    Idx.Entries.push_back(E);
  }
  DataEnd = Off;
  return true;
}

} // namespace

bool jdrag::profiler::readChunkIndexFooter(std::span<const std::byte> Stream,
                                           ChunkIndex &Out) {
  std::size_t Bytes = footerBlockSize(Stream);
  if (!Bytes)
    return false;
  std::size_t FooterStart = Stream.size() - Bytes;
  ChunkIndex Idx;
  std::uint64_t DataEnd = 0;
  if (!parseFooterBlock(Stream.data() + FooterStart, Idx, DataEnd))
    return false;
  if (DataEnd != FooterStart)
    return false;
  Out = std::move(Idx);
  return true;
}

bool jdrag::profiler::peekChunkIndexFooterTail(std::span<const std::byte> Tail,
                                               ChunkIndex &Out) {
  // footerBlockSize only looks at the last `Bytes` bytes, so running it
  // on a suffix is sound; what a suffix cannot support is the tiling
  // check against the footer's absolute start, which is why this is a
  // "peek" -- the entries are verified internally consistent, not
  // consistent with the data region.
  std::size_t Bytes = footerBlockSize(Tail);
  if (!Bytes)
    return false;
  ChunkIndex Idx;
  std::uint64_t DataEnd = 0;
  if (!parseFooterBlock(Tail.data() + (Tail.size() - Bytes), Idx, DataEnd))
    return false;
  Out = std::move(Idx);
  return true;
}

bool jdrag::profiler::rebuildChunkIndex(std::span<const std::byte> Stream,
                                        WireFormat F, ChunkIndex &Out,
                                        std::string *Err) {
  auto Fail = [&](std::string Msg) {
    if (Err)
      *Err = std::move(Msg);
    return false;
  };
  Out.Entries.clear();
  Out.TotalRecords = 0;
  Out.FromFooter = false;

  // Pass 1: walk the chunk frames (structure only -- payload CRCs are
  // verified by whoever decodes the payloads).
  std::size_t End = Stream.size();
  std::size_t Off = 0;
  std::uint32_t NextSeq = 0;
  std::size_t PayloadTotal = 0;
  while (Off < End) {
    if (End - Off < sizeof(ChunkHeader))
      return Fail("truncated chunk header at offset " + std::to_string(Off));
    ChunkHeader H;
    std::memcpy(&H, Stream.data() + Off, sizeof(H));
    if (H.Magic == FooterMagic) {
      // A footer is only legal as the terminal block; its contents are
      // exactly what this rebuild replaces, so skip it unvalidated.
      if (H.PayloadBytes > MaxChunkPayload ||
          End - Off != sizeof(ChunkHeader) + H.PayloadBytes + 8)
        return Fail("malformed chunk index footer");
      break;
    }
    if (H.Magic != ChunkMagic)
      return Fail("bad chunk magic at chunk " + std::to_string(NextSeq));
    // v6 frames may flag a compressed payload; the structural walk is
    // over on-wire bytes. Pre-v6 formats have no flag bit, so a set bit
    // 31 keeps failing the length bound below.
    bool Compressed = F >= WireFormat::V6 && chunkCompressed(H.PayloadBytes);
    std::uint32_t WireLen =
        Compressed ? chunkWireBytes(H.PayloadBytes) : H.PayloadBytes;
    if (WireLen == 0 || WireLen > MaxChunkPayload)
      return Fail("chunk " + std::to_string(NextSeq) +
                  " has implausible payload length " +
                  std::to_string(H.PayloadBytes));
    if (H.Seq != NextSeq)
      return Fail("chunk sequence jumped from " + std::to_string(NextSeq) +
                  " to " + std::to_string(H.Seq));
    if (End - Off < sizeof(ChunkHeader) + WireLen)
      return Fail("truncated chunk payload in chunk " +
                  std::to_string(NextSeq));
    ChunkIndexEntry E;
    E.Offset = Off;
    E.Seq = H.Seq;
    E.PayloadBytes = H.PayloadBytes; // on-wire field, flag included
    E.Crc = H.Crc;
    E.HeadSkip = WireLen; // overwritten if a record starts here
    Out.Entries.push_back(E);
    PayloadTotal += WireLen;
    ++NextSeq;
    Off += sizeof(ChunkHeader) + WireLen;
  }

  if (Out.Entries.empty())
    return true;

  // Pass 2: walk the records over the concatenated payloads (records
  // straddle chunks in v2/v3), attributing each record to the chunk
  // its first byte lands in and tracking the decoder state (time-delta
  // seed, straddle skip) a shard worker needs to start there.
  std::vector<std::byte> Buf;
  Buf.reserve(PayloadTotal);
  std::vector<std::size_t> Starts(Out.Entries.size());
  std::vector<std::uint8_t> Inflate;
  for (std::size_t I = 0; I != Out.Entries.size(); ++I) {
    Starts[I] = Buf.size();
    ChunkIndexEntry &E = Out.Entries[I];
    const std::byte *P = Stream.data() + E.Offset + sizeof(ChunkHeader);
    // The record walk needs uncompressed bytes; a v6 chunk whose
    // compressed payload does not decode is structural damage, same
    // class as a truncated frame. (CRCs are still not checked here.)
    ChunkHeader H;
    H.PayloadBytes = E.PayloadBytes;
    std::span<const std::byte> Body;
    if (!chunkPayloadBytes(H, P, Inflate, Body))
      return Fail("corrupt compressed payload in chunk " +
                  std::to_string(E.Seq));
    Buf.insert(Buf.end(), Body.begin(), Body.end());
  }

  std::size_t Pos = 0;
  std::size_t Cur = 0;
  ByteTime LastTime = 0;
  bool CurHasTime = false;
  std::uint64_t Records = 0;
  while (Pos < Buf.size()) {
    std::size_t Prev = Cur;
    while (Cur + 1 < Starts.size() && Pos >= Starts[Cur + 1])
      ++Cur;
    if (Cur != Prev) {
      CurHasTime = false;
      if (chunkSelfContained(F))
        LastTime = 0; // the v4/v5 delta chain restarts per chunk
    }
    ChunkIndexEntry &E = Out.Entries[Cur];
    WalkResult W =
        F == WireFormat::V2
            ? walkRecordV2(Buf.data() + Pos, Buf.size() - Pos)
            : walkRecordV3(Buf.data() + Pos, Buf.size() - Pos, LastTime);
    if (W.Malformed)
      return Fail("malformed record in chunk " + std::to_string(E.Seq));
    if (W.Len == 0)
      return Fail("truncated event stream: partial trailing record");
    // Chunk extents in Buf come from Starts, not E.PayloadBytes: for a
    // compressed chunk the entry holds the on-wire field, while Buf
    // holds the decompressed payload.
    std::size_t CurEnd =
        Cur + 1 < Starts.size() ? Starts[Cur + 1] : Buf.size();
    if (chunkSelfContained(F) && Pos + W.Len > CurEnd)
      return Fail("record straddles a chunk boundary in v4 chunk " +
                  std::to_string(E.Seq));
    if (E.RecordCount == 0) {
      E.HeadSkip = static_cast<std::uint32_t>(Pos - Starts[Cur]);
      E.TimeBase = F == WireFormat::V2 ? 0 : LastTime;
      E.FirstRecord = Records;
    }
    ++E.RecordCount;
    if (W.Timed) {
      if (!CurHasTime) {
        CurHasTime = true;
        E.FirstTime = W.Time;
      }
      E.LastTime = W.Time;
      LastTime = W.Time;
    }
    ++Records;
    Pos += W.Len;
  }
  Out.TotalRecords = Records;
  return true;
}

//===----------------------------------------------------------------------===//
// Replay
//===----------------------------------------------------------------------===//

bool jdrag::profiler::replayBytes(std::span<const std::byte> Bytes,
                                  EventConsumer &C, std::string *Err,
                                  WireFormat Format) {
  FrameDecoder D(C, Format);
  if (!D.feed(Bytes.data(), Bytes.size())) {
    if (Err)
      *Err = D.error();
    return false;
  }
  if (!D.atRecordBoundary()) {
    if (Err)
      *Err = "truncated event stream: partial trailing chunk or record";
    return false;
  }
  return true;
}

namespace {

/// The one place the `.jdev` header is parsed: magic, version range,
/// and the v5+ sampling extension. \p F must be positioned at byte 0;
/// on success it is left at the first chunk frame and \p Info is
/// filled. replayFile and readStreamHeader both go through here, so a
/// format bump (like v6) lands exactly once.
bool readHeaderFrom(std::FILE *F, const std::string &Path,
                    StreamHeaderInfo &Info, std::string &Err) {
  std::uint64_t Magic = 0;
  std::uint32_t Version = 0, Reserved = 0;
  if (std::fread(&Magic, sizeof(Magic), 1, F) != 1 || Magic != StreamMagic) {
    Err = Path + ": not a .jdev event stream (bad magic)";
    return false;
  }
  if (std::fread(&Version, sizeof(Version), 1, F) != 1 ||
      std::fread(&Reserved, sizeof(Reserved), 1, F) != 1 ||
      Version < static_cast<std::uint32_t>(WireFormat::V2) ||
      Version > static_cast<std::uint32_t>(WireFormat::V6)) {
    Err = Path + ": unsupported .jdev version " + std::to_string(Version);
    return false;
  }
  Info.Format = static_cast<WireFormat>(Version);
  Info.Sampling = SamplingParams{};
  Info.Compressed = Info.Format >= WireFormat::V6;
  if (Info.Format >= WireFormat::V5 &&
      (std::fread(&Info.Sampling.SampleBytes, 8, 1, F) != 1 ||
       std::fread(&Info.Sampling.SampleSeed, 8, 1, F) != 1)) {
    Err = Path + ": truncated v" + std::to_string(Version) +
          " stream header";
    return false;
  }
  return true;
}

} // namespace

bool jdrag::profiler::replayFile(const std::string &Path, EventConsumer &C,
                                 std::string *Err, StreamHeaderInfo *Info) {
  auto Fail = [&](const std::string &Msg) {
    if (Err)
      *Err = Msg;
    return false;
  };
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return Fail("cannot open " + Path);

  StreamHeaderInfo Hdr;
  std::string HdrErr;
  if (!readHeaderFrom(F, Path, Hdr, HdrErr)) {
    std::fclose(F);
    return Fail(HdrErr);
  }
  if (Info)
    *Info = Hdr;

  FrameDecoder D(C, Hdr.Format);
  std::byte Buf[64 * 1024];
  bool Ok = true;
  while (true) {
    std::size_t N = std::fread(Buf, 1, sizeof(Buf), F);
    if (N == 0)
      break;
    if (!D.feed(Buf, N)) {
      Ok = false;
      break;
    }
  }
  bool ReadError = std::ferror(F) != 0;
  std::fclose(F);
  if (!Ok)
    return Fail(D.error());
  if (ReadError)
    return Fail(Path + ": read error");
  if (!D.atRecordBoundary())
    return Fail(Path +
                ": truncated event stream (partial trailing chunk or "
                "record); try `jdrag salvage`");
  return true;
}

bool jdrag::profiler::readStreamHeader(const std::string &Path,
                                       StreamHeaderInfo &Info,
                                       std::string *Err) {
  auto Fail = [&](const std::string &Msg) {
    if (Err)
      *Err = Msg;
    return false;
  };
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return Fail("cannot open " + Path);
  std::string HdrErr;
  if (!readHeaderFrom(F, Path, Info, HdrErr)) {
    std::fclose(F);
    return Fail(HdrErr);
  }
  std::fclose(F);
  return true;
}
