//===- profiler/EventStream.cpp -------------------------------------------===//

#include "profiler/EventStream.h"

#include "support/Crc32c.h"

#include <chrono>
#include <cstring>
#include <thread>

#ifndef _WIN32
#include <unistd.h>
#endif

using namespace jdrag;
using namespace jdrag::profiler;

EventSink::~EventSink() = default;
EventConsumer::~EventConsumer() = default;

namespace {
constexpr const char *EventKindNames[] = {
    "define-site", "alloc",   "use",      "gc-end",
    "deep-gc-end", "collect", "survivor", "terminate",
};
static_assert(std::size(EventKindNames) == NumEventKinds,
              "name every EventKind");

// .jdev header: 8-byte StreamFileMagic, u32 version, u32 reserved. The
// version field is 2 since chunk framing (v1 was the unframed record
// stream).
constexpr std::uint64_t StreamMagic = StreamFileMagic;
} // namespace

const char *jdrag::profiler::eventKindName(EventKind K) {
  auto I = static_cast<std::size_t>(K);
  return I < NumEventKinds ? EventKindNames[I] : "?";
}

//===----------------------------------------------------------------------===//
// FileEventSink
//===----------------------------------------------------------------------===//

FileEventSink::~FileEventSink() {
  if (F)
    std::fclose(F);
}

bool FileEventSink::open(const std::string &Path, Options O) {
  if (F)
    return false; // double-open: reject; the first stream stays usable
  Opt = O;
  F = std::fopen(Path.c_str(), "wb");
  if (!F) {
    LastErr = errno;
    return Ok = false;
  }
  std::uint32_t Version = FormatVersion;
  std::uint32_t Reserved = 0;
  Ok = std::fwrite(&StreamMagic, sizeof(StreamMagic), 1, F) == 1 &&
       std::fwrite(&Version, sizeof(Version), 1, F) == 1 &&
       std::fwrite(&Reserved, sizeof(Reserved), 1, F) == 1;
  if (!Ok)
    LastErr = errno;
  return Ok;
}

std::size_t FileEventSink::rawWrite(const std::byte *Data, std::size_t Size) {
  return std::fwrite(Data, 1, Size, F);
}

bool FileEventSink::durableFlush() {
  if (std::fflush(F) != 0) {
    LastErr = errno;
    return false;
  }
#ifndef _WIN32
  if (fsync(fileno(F)) != 0) {
    LastErr = errno;
    return false;
  }
#endif
  return true;
}

bool FileEventSink::writeChunk(const std::byte *Data, std::size_t Size) {
  if (!F || !Ok)
    return false;
  std::size_t Off = 0;
  std::uint32_t Attempts = 0;
  while (Off < Size) {
    errno = 0;
    std::size_t N = rawWrite(Data + Off, Size - Off);
    Off += N;
    if (Off == Size)
      break;
    int E = errno;
    LastErr = E;
    // A short write that made progress is always worth continuing;
    // EINTR/EAGAIN without progress is transient up to the retry
    // budget. Anything else (ENOSPC, EIO) is fatal for this sink.
    bool Transient = N > 0 || E == EINTR || E == EAGAIN || E == EWOULDBLOCK;
    if (N > 0) {
      Attempts = 0;
      continue;
    }
    if (!Transient || Attempts >= Opt.MaxRetries)
      return Ok = false;
    ++Attempts;
    ++Retries;
    std::clearerr(F);
    // Exponential backoff, capped well under human-visible latency.
    std::this_thread::sleep_for(std::chrono::microseconds(
        100u << (Attempts < 7 ? Attempts : 7)));
  }
  Bytes += Size;
  ++Chunks;
  if (Opt.FsyncEveryChunks && Chunks % Opt.FsyncEveryChunks == 0 &&
      !durableFlush())
    return Ok = false;
  return true;
}

bool FileEventSink::finish() {
  if (!F)
    return Ok;
  if (Ok && !durableFlush())
    Ok = false;
  std::fclose(F);
  F = nullptr;
  return Ok;
}

//===----------------------------------------------------------------------===//
// EventBuffer
//===----------------------------------------------------------------------===//

EventBuffer::EventBuffer(EventSink &Sink, std::size_t ChunkBytes,
                         bool Checksum)
    : Sink(Sink), ChunkBytes(ChunkBytes ? ChunkBytes : DefaultChunkBytes),
      Checksum(Checksum) {
  Chunk.reserve(sizeof(ChunkHeader) + this->ChunkBytes);
  beginChunk();
}

void EventBuffer::beginChunk() {
  Chunk.clear();
  Chunk.resize(sizeof(ChunkHeader)); // placeholder, filled at flush
}

void EventBuffer::writeBytes(const void *Data, std::size_t Size) {
  const auto *Src = static_cast<const std::byte *>(Data);
  std::size_t Cap = sizeof(ChunkHeader) + ChunkBytes;
  while (Size) {
    std::size_t Room = Cap - Chunk.size();
    std::size_t N = Size < Room ? Size : Room;
    Chunk.insert(Chunk.end(), Src, Src + N);
    Src += N;
    Size -= N;
    if (Chunk.size() == Cap)
      flush(); // dropped chunks are accounted; keep emitting regardless
  }
}

void EventBuffer::writeEvent(const EventRecord &E) {
  writeBytes(&E, sizeof(E));
  ++Events;
}

void EventBuffer::writeSite(SiteId Id, std::span<const SiteFrame> Frames) {
  EventRecord E;
  E.Kind = static_cast<std::uint8_t>(EventKind::DefineSite);
  E.Site = Id;
  E.Arg0 = Frames.size();
  writeBytes(&E, sizeof(E));
  for (const SiteFrame &F : Frames) {
    WireFrame W{F.Method.Index, F.Pc, F.Line};
    writeBytes(&W, sizeof(W));
  }
  ++Events;
}

bool EventBuffer::flush() {
  std::size_t Payload = Chunk.size() - sizeof(ChunkHeader);
  if (!Payload)
    return !SinkFailed;

  ChunkHeader H;
  H.Magic = ChunkMagic;
  H.Seq = NextSeq++;
  H.PayloadBytes = static_cast<std::uint32_t>(Payload);
  H.Crc = Checksum
              ? support::crc32c(Chunk.data() + sizeof(ChunkHeader), Payload)
              : 0;
  std::memcpy(Chunk.data(), &H, sizeof(H));

  bool Accepted =
      !SinkFailed && Sink.writeChunk(Chunk.data(), Chunk.size());
  if (Accepted) {
    ++Health.ChunksWritten;
    Health.BytesWritten += Chunk.size();
  } else {
    ++Health.ChunksDropped;
    Health.BytesDropped += Chunk.size();
    if (!SinkFailed) {
      SinkFailed = true;
      if (!Warned) {
        Warned = true;
        int E = Sink.lastErrno();
        std::fprintf(stderr,
                     "jdrag: warning: event-stream sink write failed%s%s; "
                     "continuing with drop accounting, the recording will "
                     "be incomplete\n",
                     E ? ": " : "", E ? std::strerror(E) : "");
      }
    }
  }
  beginChunk();
  return Accepted;
}

StreamHealth EventBuffer::health() const {
  StreamHealth H = Health;
  H.Retries = Sink.retries();
  H.LastErrno = Sink.lastErrno();
  return H;
}

//===----------------------------------------------------------------------===//
// StreamDecoder (record layer)
//===----------------------------------------------------------------------===//

bool StreamDecoder::fail(std::string Msg) {
  Failed = true;
  if (Error.empty())
    Error = std::move(Msg);
  return false;
}

bool StreamDecoder::feed(const std::byte *Data, std::size_t Size) {
  if (Failed)
    return false;

  // Work over the concatenation of leftover bytes and the new slice
  // without copying the new slice unless a record straddles its end.
  const std::byte *Cur = Data;
  std::size_t Avail = Size;
  if (!Pending.empty()) {
    Pending.insert(Pending.end(), Data, Data + Size);
    Cur = Pending.data();
    Avail = Pending.size();
  }

  std::size_t Off = 0;
  while (true) {
    if (Avail - Off < sizeof(EventRecord))
      break;
    EventRecord E;
    std::memcpy(&E, Cur + Off, sizeof(E));
    if (E.Kind >= NumEventKinds)
      return fail("malformed event stream: unknown event kind " +
                  std::to_string(E.Kind));
    if (E.kind() == EventKind::DefineSite) {
      if (E.Arg0 > MaxWireFrames)
        return fail("malformed event stream: site with " +
                    std::to_string(E.Arg0) + " frames");
      std::size_t Payload = static_cast<std::size_t>(E.Arg0) * sizeof(WireFrame);
      if (Avail - Off < sizeof(EventRecord) + Payload)
        break;
      FrameScratch.clear();
      const std::byte *P = Cur + Off + sizeof(EventRecord);
      for (std::uint64_t I = 0; I != E.Arg0; ++I) {
        WireFrame W;
        std::memcpy(&W, P + I * sizeof(WireFrame), sizeof(W));
        FrameScratch.push_back({ir::MethodId(W.Method), W.Pc, W.Line});
      }
      C.onSite(E.Site, FrameScratch);
      Off += sizeof(EventRecord) + Payload;
    } else {
      C.onEvent(E);
      Off += sizeof(EventRecord);
    }
    ++Events;
  }

  // Stash the incomplete tail for the next feed.
  if (!Pending.empty()) {
    Pending.erase(Pending.begin(),
                  Pending.begin() + static_cast<std::ptrdiff_t>(Off));
  } else if (Off < Avail) {
    Pending.assign(Cur + Off, Cur + Avail);
  }
  return true;
}

//===----------------------------------------------------------------------===//
// FrameDecoder (chunk layer)
//===----------------------------------------------------------------------===//

bool FrameDecoder::fail(std::string Msg) {
  Failed = true;
  if (Error.empty())
    Error = std::move(Msg);
  return false;
}

bool FrameDecoder::feed(const std::byte *Data, std::size_t Size) {
  if (Failed)
    return false;

  // Same zero-copy-unless-straddling strategy as the record layer; on
  // the live path each feed is exactly one whole frame, so Pending
  // normally stays empty.
  const std::byte *Cur = Data;
  std::size_t Avail = Size;
  if (!Pending.empty()) {
    Pending.insert(Pending.end(), Data, Data + Size);
    Cur = Pending.data();
    Avail = Pending.size();
  }

  std::size_t Off = 0;
  while (Avail - Off >= sizeof(ChunkHeader)) {
    ChunkHeader H;
    std::memcpy(&H, Cur + Off, sizeof(H));
    if (H.Magic != ChunkMagic)
      return fail("corrupt event stream: bad chunk magic at chunk " +
                  std::to_string(NextSeq));
    if (H.PayloadBytes == 0 || H.PayloadBytes > MaxChunkPayload)
      return fail("corrupt event stream: chunk " + std::to_string(NextSeq) +
                  " has implausible payload length " +
                  std::to_string(H.PayloadBytes));
    if (H.Seq != NextSeq)
      return fail("corrupt event stream: chunk sequence jumped from " +
                  std::to_string(NextSeq) + " to " + std::to_string(H.Seq) +
                  " (dropped or reordered chunks)");
    if (Avail - Off < sizeof(ChunkHeader) + H.PayloadBytes)
      break; // partial payload: wait for more bytes
    const std::byte *Payload = Cur + Off + sizeof(ChunkHeader);
    std::uint32_t Crc = support::crc32c(Payload, H.PayloadBytes);
    if (Crc != H.Crc)
      return fail("corrupt event stream: chunk " + std::to_string(NextSeq) +
                  " CRC mismatch (stored " + std::to_string(H.Crc) +
                  ", computed " + std::to_string(Crc) + ")");
    if (!Records.feed(Payload, H.PayloadBytes)) {
      Failed = true;
      return false; // record-layer error() is surfaced by error()
    }
    ++Chunks;
    ++NextSeq;
    Off += sizeof(ChunkHeader) + H.PayloadBytes;
  }

  if (!Pending.empty()) {
    Pending.erase(Pending.begin(),
                  Pending.begin() + static_cast<std::ptrdiff_t>(Off));
  } else if (Off < Avail) {
    Pending.assign(Cur + Off, Cur + Avail);
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Replay
//===----------------------------------------------------------------------===//

bool jdrag::profiler::replayBytes(std::span<const std::byte> Bytes,
                                  EventConsumer &C, std::string *Err) {
  FrameDecoder D(C);
  if (!D.feed(Bytes.data(), Bytes.size())) {
    if (Err)
      *Err = D.error();
    return false;
  }
  if (!D.atRecordBoundary()) {
    if (Err)
      *Err = "truncated event stream: partial trailing chunk or record";
    return false;
  }
  return true;
}

bool jdrag::profiler::replayFile(const std::string &Path, EventConsumer &C,
                                 std::string *Err) {
  auto Fail = [&](const std::string &Msg) {
    if (Err)
      *Err = Msg;
    return false;
  };
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return Fail("cannot open " + Path);

  std::uint64_t Magic = 0;
  std::uint32_t Version = 0, Reserved = 0;
  if (std::fread(&Magic, sizeof(Magic), 1, F) != 1 || Magic != StreamMagic) {
    std::fclose(F);
    return Fail(Path + ": not a .jdev event stream (bad magic)");
  }
  if (std::fread(&Version, sizeof(Version), 1, F) != 1 ||
      std::fread(&Reserved, sizeof(Reserved), 1, F) != 1 ||
      Version != FileEventSink::FormatVersion) {
    std::fclose(F);
    return Fail(Path + ": unsupported .jdev version " +
                std::to_string(Version));
  }

  FrameDecoder D(C);
  std::byte Buf[64 * 1024];
  bool Ok = true;
  while (true) {
    std::size_t N = std::fread(Buf, 1, sizeof(Buf), F);
    if (N == 0)
      break;
    if (!D.feed(Buf, N)) {
      Ok = false;
      break;
    }
  }
  bool ReadError = std::ferror(F) != 0;
  std::fclose(F);
  if (!Ok)
    return Fail(D.error());
  if (ReadError)
    return Fail(Path + ": read error");
  if (!D.atRecordBoundary())
    return Fail(Path +
                ": truncated event stream (partial trailing chunk or "
                "record); try `jdrag salvage`");
  return true;
}
