//===- profiler/AsyncEventSink.h - Background-writer sink -------*- C++ -*-===//
//
// Part of jdrag (PLDI 2001 "Heap Profiling for Space-Efficient Java").
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Takes the sink's I/O off the VM's critical path. AsyncEventSink wraps
/// any other EventSink and moves its writeChunk() work -- the file
/// write, the retry/backoff loop, the fsync cadence -- onto a dedicated
/// background writer thread behind a bounded queue of copied chunks. The
/// interpreter thread's cost per flushed chunk drops to one memcpy and
/// one mutex hand-off; the paper's "up to 10x" instrumentation slowdown
/// was dominated by exactly this kind of synchronous per-event work.
///
/// The queue is bounded (Options::QueueChunks) so a slow disk cannot
/// grow memory without limit. When it fills, one of two policies applies:
///
///   Block  (default) the VM thread waits for a free slot -- lossless,
///          back-pressure propagates to the interpreter;
///   Drop   the chunk is shed immediately and accounted in
///          droppedChunks()/droppedBytes() -- bounded overhead, the
///          recording ends up with sequence gaps that the decoder
///          detects and StreamSalvage recovers around.
///
/// Failure semantics match the synchronous pipeline's crash-safety
/// contract: when the inner sink fails, this sink fails sticky, every
/// chunk still queued (and every later one) is accounted as dropped, and
/// the inner sink's errno/retries are surfaced. finish() drains the
/// queue, joins the writer, and finishes the inner sink; it returns true
/// only for a lossless, fully-written stream, so
/// StreamHealth::intact() remains an end-to-end truth.
///
//===----------------------------------------------------------------------===//

#ifndef JDRAG_PROFILER_ASYNCEVENTSINK_H
#define JDRAG_PROFILER_ASYNCEVENTSINK_H

#include "profiler/EventStream.h"

#include <atomic>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>

namespace jdrag::profiler {

class AsyncEventSink : public EventSink {
public:
  /// What writeChunk() does when the queue is full.
  enum class QueueFullPolicy : std::uint8_t {
    Block, ///< wait for the writer to free a slot (lossless)
    Drop,  ///< shed the chunk, account it (bounded overhead)
  };

  struct Options {
    /// Queue depth in chunks. With the default 64 KB chunks, 16 slots
    /// bound the buffered backlog at 1 MB.
    std::size_t QueueChunks = 16;
    QueueFullPolicy Policy = QueueFullPolicy::Block;
  };

  explicit AsyncEventSink(EventSink &Inner) : AsyncEventSink(Inner, {}) {}
  AsyncEventSink(EventSink &Inner, Options Opt);
  ~AsyncEventSink() override;
  AsyncEventSink(const AsyncEventSink &) = delete;
  AsyncEventSink &operator=(const AsyncEventSink &) = delete;

  bool writeChunk(const std::byte *Data, std::size_t Size) override;
  /// Drains the queue, joins the writer thread, finishes the inner
  /// sink. Idempotent. True only if nothing was dropped or failed.
  bool finish() override;

  int lastErrno() const override;
  std::uint32_t retries() const override;
  std::uint64_t droppedChunks() const override;
  std::uint64_t droppedBytes() const override;
  // Spool/failover accounting passes straight through to the inner sink
  // (only SocketEventSink reports nonzero values, and it keeps these
  // counters atomic precisely so this pass-through is safe while the
  // writer thread advances them). Momentary snapshots mid-run; exact
  // once finish() has joined the writer.
  std::uint64_t spooledChunks() const override {
    return Inner.spooledChunks();
  }
  std::uint64_t spooledBytes() const override { return Inner.spooledBytes(); }
  std::uint32_t failovers() const override { return Inner.failovers(); }

  /// Chunks handed to the inner sink so far (tests).
  std::uint64_t chunksForwarded() const { return Forwarded.load(); }

private:
  void writerLoop();
  /// Requires Mu held. Accounts every queued chunk as dropped.
  void dropQueueLocked();

  EventSink &Inner;
  Options Opt;

  std::mutex Mu;
  std::condition_variable NotEmpty; ///< writer waits for work
  std::condition_variable NotFull;  ///< blocked producers wait for room
  std::deque<std::vector<std::byte>> Queue;
  std::vector<std::vector<std::byte>> FreeList; ///< buffer reuse
  bool Stopping = false; ///< finish() requested; writer drains and exits
  bool InnerFailed = false;

  std::thread Writer;
  bool Finished = false;  ///< finish() already ran (producer thread only)
  bool FinishOk = false;

  // Snapshots the producer may read while the writer runs.
  std::atomic<std::uint64_t> DroppedChunks{0};
  std::atomic<std::uint64_t> DroppedBytes{0};
  std::atomic<std::uint64_t> Forwarded{0};
  std::atomic<int> InnerErrno{0};
  std::atomic<std::uint32_t> InnerRetries{0};
};

} // namespace jdrag::profiler

#endif // JDRAG_PROFILER_ASYNCEVENTSINK_H
