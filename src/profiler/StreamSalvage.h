//===- profiler/StreamSalvage.h - Log fsck + salvage ------------*- C++ -*-===//
//
// Part of jdrag (PLDI 2001 "Heap Profiling for Space-Efficient Java").
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recovery tooling for damaged `.jdev` recordings. The chunk framing
/// (profiler/EventStream.h) makes every chunk independently verifiable,
/// so a crashed, truncated, or bit-flipped recording is not a total
/// loss: scanEventFile() walks the file chunk by chunk, gives each a
/// verdict (CRC mismatch, truncated payload, bad sequence, ...), and
/// optionally replays the *longest valid event prefix* -- every
/// complete record before the first damage -- into a consumer.
/// salvageEventFile() re-encodes that prefix as a fresh, fully valid
/// `.jdev`, so the standard strict replay path works on the result.
///
/// After the first damaged chunk the scan resynchronizes on the next
/// chunk magic and keeps judging chunks (so `jdrag fsck` can report the
/// full extent of the damage), but no further events are replayed: site
/// definitions or a straddling record may be missing, so anything past
/// the damage cannot be trusted.
///
//===----------------------------------------------------------------------===//

#ifndef JDRAG_PROFILER_STREAMSALVAGE_H
#define JDRAG_PROFILER_STREAMSALVAGE_H

#include "profiler/EventStream.h"

#include <cstddef>
#include <string>
#include <vector>

namespace jdrag::profiler {

/// Per-chunk integrity verdict of a salvage scan.
enum class ChunkStatus : std::uint8_t {
  Ok,               ///< header valid, CRC matches
  TruncatedHeader,  ///< file ends inside the 16-byte chunk header
  TruncatedPayload, ///< file ends inside the payload
  BadMagic,         ///< header magic is wrong (overwritten / garbage)
  BadSequence,      ///< sequence number out of order (dropped chunks)
  OversizedPayload, ///< length field beyond MaxChunkPayload
  BadCrc,           ///< payload bytes do not match the stored CRC-32C
  BadRecords,       ///< CRC valid but the payload decodes to garbage
  BadCompression,   ///< v6 compressed payload does not decompress
};

const char *chunkStatusName(ChunkStatus S);

struct ChunkVerdict {
  std::uint64_t Offset = 0; ///< file offset of the chunk header
  std::uint32_t Seq = 0;    ///< sequence number from the header
  std::uint32_t PayloadBytes = 0; ///< on-wire payload bytes (compressed
                                  ///< size for a flagged v6 chunk)
  ChunkStatus Status = ChunkStatus::Ok;

  bool ok() const { return Status == ChunkStatus::Ok; }
};

/// The complete result of scanning one `.jdev` file.
struct SalvageReport {
  /// Non-empty when the file could not be scanned at all (unopenable,
  /// bad file magic, unsupported version). No chunks are judged then.
  std::string FileError;
  std::uint32_t Version = 0;
  std::uint64_t FileBytes = 0;
  std::vector<ChunkVerdict> Chunks;
  /// Index into Chunks of the first damaged chunk (npos when none).
  std::size_t FirstDamaged = npos;
  /// Complete events decoded from the valid prefix.
  std::uint64_t EventsRecovered = 0;
  /// Payload bytes of the valid prefix (complete records only).
  std::uint64_t BytesRecovered = 0;
  /// The valid prefix ended mid-record (the partial record is dropped).
  bool TailPartialRecord = false;
  /// A v4 chunk index footer block is present at the file tail.
  bool FooterPresent = false;
  /// The footer parsed and CRC-verified (meaningless if !FooterPresent).
  /// A missing footer is NOT damage (readers rebuild the index); a
  /// present-but-corrupt one is.
  bool FooterOk = false;
  /// Sampling params from a v5+ header (SampleBytes 0 for exact or
  /// pre-v5 recordings). Salvage propagates them to its output so a
  /// recovered sampled recording still scales correctly.
  SamplingParams Sampling;
  /// v6 header: chunk payloads in this file may be compressed. Salvage
  /// propagates compression to its output too.
  bool Compressed = false;
  /// Compression accounting over every chunk whose payload verified:
  /// uncompressed payload bytes vs bytes actually on disk. Equal for
  /// pre-v6 files; the ratio Raw/Wire is the headline `jdrag fsck`
  /// space-saving metric.
  std::uint64_t RawPayloadBytes = 0;
  std::uint64_t WirePayloadBytes = 0;

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  bool readable() const { return FileError.empty(); }
  /// True when the recording is fully intact (nothing was lost).
  bool clean() const {
    return readable() && FirstDamaged == npos && !TailPartialRecord &&
           (!FooterPresent || FooterOk);
  }
  std::uint64_t chunksOk() const;
  std::uint64_t chunksDamaged() const;
  /// One-paragraph human-readable summary (used by `jdrag fsck`).
  std::string summary(const std::string &Path) const;
};

/// Scans the `.jdev` at \p Path, judging every chunk. When \p C is
/// non-null, the longest valid event prefix is replayed into it (all
/// complete records up to the first damage). Never fails hard on
/// damaged input -- damage is reported in the returned verdicts. For
/// v4 files the terminal chunk index footer is validated separately
/// (FooterPresent/FooterOk) rather than judged as a chunk.
SalvageReport scanEventFile(const std::string &Path, EventConsumer *C);

/// scanEventFile with the per-chunk CRC verification fanned out over
/// \p Jobs threads. Only the verification parallelizes -- the verdict
/// walk and any prefix replay into \p C stay sequential and the report
/// is identical to the sequential scan's; damaged or non-contiguous
/// files fall back to scanEventFile wholesale. Jobs <= 1 is exactly
/// scanEventFile.
SalvageReport scanEventFileParallel(const std::string &Path, unsigned Jobs,
                                    EventConsumer *C = nullptr);

/// Recovers the longest valid event prefix of \p In and writes it to
/// \p Out as a fresh, fully valid `.jdev` recording. Returns false and
/// sets \p Err only when \p In is unreadable (no prefix exists) or
/// \p Out cannot be written; recovering zero events from a readable
/// file still succeeds (and writes a header-only recording). \p Rep,
/// when non-null, receives the scan report of \p In. The output is
/// written in the current default wire format, chunk index footer
/// included. \p Jobs > 1 fans the probe pass's CRC verification out
/// over that many threads (the re-encode pass is inherently ordered).
bool salvageEventFile(const std::string &In, const std::string &Out,
                      SalvageReport *Rep = nullptr,
                      std::string *Err = nullptr, unsigned Jobs = 1);

} // namespace jdrag::profiler

#endif // JDRAG_PROFILER_STREAMSALVAGE_H
