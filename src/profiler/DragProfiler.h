//===- profiler/DragProfiler.h - Phase-1 instrumentation --------*- C++ -*-===//
//
// Part of jdrag (PLDI 2001 "Heap Profiling for Space-Efficient Java").
//
//===----------------------------------------------------------------------===//
///
/// \file
/// DragProfiler implements the paper's instrumented-JVM phase as an
/// *event-stream consumer*: it keeps a trailer per live object (in a side
/// table keyed by immortal object id, so the heap's byte accounting
/// excludes the trailer exactly as the paper specifies), timestamps every
/// use on the byte clock (optionally snapped to the start of the current
/// deep-GC interval, mirroring the paper's "all uses ... are performed at
/// the beginning of the interval" assumption), records nested allocation
/// and last-use sites, and logs a record when the object is reclaimed or
/// survives termination.
///
/// Because its only input is the binary event stream, the same profiler
/// runs in two modes:
///
///  - attached (live): attachTo() installs its dispatch sink in the
///    VMOptions and it consumes events as the VM flushes them;
///  - detached: replayProfile() (or profiler::replayFile with the
///    profiler as consumer) rebuilds an identical ProfileLog from a
///    recorded `.jdev` file, with no VM at all -- the paper's genuinely
///    separable phase 2.
///
/// Usage (attached):
/// \code
///   DragProfiler Prof(Program, ProfilerConfig());
///   VMOptions Opts;
///   Opts.DeepGCIntervalBytes = 100 * KB; // the paper's interval
///   Prof.attachTo(Opts);
///   VirtualMachine VM(Program, Opts);
///   VM.run();
///   const ProfileLog &Log = Prof.log();
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef JDRAG_PROFILER_DRAGPROFILER_H
#define JDRAG_PROFILER_DRAGPROFILER_H

#include "profiler/EventStream.h"
#include "profiler/ProfileLog.h"
#include "vm/VirtualMachine.h"

#include <memory>
#include <unordered_map>
#include <unordered_set>

namespace jdrag::profiler {

/// Tuning knobs for phase 1.
struct ProfilerConfig {
  /// Nesting level of recorded call chains ("the level of nesting can be
  /// set in order to tradeoff more accurate information and speed").
  /// Enforced by the VM-side emitter; attachTo() wires it through.
  std::uint32_t SiteDepth = 4;
  /// Snap use timestamps to the last deep-GC boundary (paper behaviour).
  /// Disable for exact timestamps (ablation).
  bool SnapUseTimes = true;
  /// Classes whose instances are excluded from the log, mirroring the
  /// paper's exclusion of Class objects and class-reachable specials.
  std::vector<ir::ClassId> ExcludedClasses;
  /// Keep trailers in a paged dense array indexed by object id (object
  /// ids are dense and monotonic) instead of a hash map -- no hashing on
  /// the per-Use hot path. The map fallback exists so the bench ladder
  /// can measure the difference.
  bool UseDenseTrailers = true;
};

/// Receives finished object records as the profiler emits them, instead
/// of having them appended to ProfileLog::Records. The streaming
/// analysis engine (analysis/StreamingAnalysis.h) registers one so
/// phase 2 runs in O(live sites) memory: records are folded the moment
/// the object dies and never stored.
class RecordSink {
public:
  virtual ~RecordSink() = default;
  virtual void onRecord(const ObjectRecord &R) = 0;
};

/// The phase-1 profiler. Attach to a VirtualMachine (attachTo) or replay
/// a recorded stream over it, then take the log.
class DragProfiler : public EventConsumer {
public:
  explicit DragProfiler(const ir::Program &P,
                        ProfilerConfig Config = ProfilerConfig());

  /// Configures \p Opts for live profiling: installs this profiler's
  /// dispatch sink and its site depth, and aligns the sink's decoder
  /// with the VM's wire format -- set Opts.EventFormat and the sampling
  /// knobs (if non-default) *before* calling this. Active sampling
  /// upgrades the decode format to v5 (matching the VM's emitter) and
  /// stamps the params into the log so reports scale estimates.
  void attachTo(vm::VMOptions &Opts) {
    Opts.Sink = &Sink;
    Opts.SiteDepth = Config.SiteDepth;
    SamplingParams S;
    S.SampleBytes = Opts.SampleBytes;
    S.SampleSeed = Opts.SampleSeed;
    Sink.setWireFormat(effectiveFormat(Opts.EventFormat, S));
    Log.SampleRate = S.SampleBytes;
    // Exact logs keep the canonical {0, 0}: the seed means nothing
    // without a rate, and exact logs must be bit-identical whether the
    // profiler ran attached, detached, or was fed a raw stream.
    Log.SampleSeed = S.enabled() ? S.SampleSeed : 0;
  }

  /// The sink feeding this profiler (for manual wiring, e.g. a TeeSink
  /// that both records to file and profiles live).
  EventSink &sink() { return Sink; }

  // EventConsumer: decoded stream input.
  void onSite(SiteId Id, std::span<const SiteFrame> Frames) override;
  void onEvent(const EventRecord &E) override;

  const ProfileLog &log() const { return Log; }
  ProfileLog takeLog() { return std::move(Log); }

  /// Stamps the recording's delivery accounting into the log. Call after
  /// the run with the VM's streamHealth(); a lossy stream marks the log
  /// incomplete so every report over it carries the warning.
  void noteStreamHealth(const StreamHealth &H) {
    Log.Complete = H.intact();
    Log.DroppedChunks = H.ChunksDropped;
    Log.DroppedBytes = H.BytesDropped;
    Log.Retries = H.Retries;
    Log.LastErrno = H.LastErrno;
  }

  /// Live (not yet logged) object count -- should be 0 after a run.
  std::size_t liveTrailers() const {
    return Config.UseDenseTrailers ? Dense.size() : Trailers.size();
  }

  /// High-water mark of liveTrailers() over the run: the O(live objects)
  /// part of the streaming engine's resident state (BENCH_9).
  std::size_t peakLiveTrailers() const { return PeakLive; }

  /// Diverts finished records to \p S; the log keeps everything else
  /// (sites, GC samples, end time, health) and Log.Records stays empty.
  /// Pass nullptr to restore the default materializing behaviour.
  void setRecordSink(RecordSink *S) { RecSink = S; }

private:
  struct Trailer {
    ir::ClassId Class;
    ir::ArrayKind AKind = ir::ArrayKind::Int;
    bool IsArray = false;
    std::uint32_t Bytes = 0;
    ByteTime AllocTime = 0;
    ByteTime FirstUseTime = 0;
    ByteTime LastUseTime = 0;
    SiteId AllocSite = InvalidSite;
    SiteId LastUseSite = InvalidSite;
    std::uint32_t UseCount = 0;
    bool UsedOutsideInit = false;
    bool Excluded = false;
  };

  /// Paged dense trailer store indexed by object id. The heap hands out
  /// object ids densely and monotonically, so id -> slot is a shift and
  /// a mask with no hashing on the per-Use hot path; the per-slot Live
  /// flag is the free-slot check (a stale or VM-internal id hits a dead
  /// slot, never a neighbour's trailer). A page whose live count drains
  /// to zero *behind* the allocation frontier is released, so resident
  /// memory tracks the live-object population, not the total number of
  /// objects ever allocated.
  class TrailerTable {
  public:
    Trailer &insert(vm::ObjectId Id) {
      std::size_t Pi = static_cast<std::size_t>(Id) / PageSize;
      std::size_t Si = static_cast<std::size_t>(Id) % PageSize;
      if (Pi >= Pages.size())
        Pages.resize(Pi + 1);
      if (!Pages[Pi])
        Pages[Pi] = std::make_unique<Page>();
      if (Pi > Frontier)
        Frontier = Pi;
      Page &Pg = *Pages[Pi];
      if (!Pg.Live[Si]) {
        Pg.Live[Si] = true;
        ++Pg.LiveCount;
        ++LiveTotal;
      }
      Pg.Slots[Si] = Trailer();
      return Pg.Slots[Si];
    }
    Trailer *find(vm::ObjectId Id) {
      std::size_t Pi = static_cast<std::size_t>(Id) / PageSize;
      if (Pi >= Pages.size() || !Pages[Pi])
        return nullptr;
      Page &Pg = *Pages[Pi];
      std::size_t Si = static_cast<std::size_t>(Id) % PageSize;
      return Pg.Live[Si] ? &Pg.Slots[Si] : nullptr;
    }
    void erase(vm::ObjectId Id) {
      std::size_t Pi = static_cast<std::size_t>(Id) / PageSize;
      if (Pi >= Pages.size() || !Pages[Pi])
        return;
      Page &Pg = *Pages[Pi];
      std::size_t Si = static_cast<std::size_t>(Id) % PageSize;
      if (!Pg.Live[Si])
        return;
      Pg.Live[Si] = false;
      --Pg.LiveCount;
      --LiveTotal;
      // Keep the frontier page even when briefly empty: allocation is
      // still filling it and releasing would just recreate it.
      if (Pg.LiveCount == 0 && Pi < Frontier)
        Pages[Pi].reset();
    }
    std::size_t size() const { return LiveTotal; }

  private:
    static constexpr std::size_t PageSize = 4096;
    struct Page {
      Trailer Slots[PageSize];
      bool Live[PageSize] = {};
      std::size_t LiveCount = 0;
    };
    std::vector<std::unique_ptr<Page>> Pages;
    std::size_t Frontier = 0;
    std::size_t LiveTotal = 0;
  };

  Trailer *findTrailer(vm::ObjectId Id);
  void eraseTrailer(vm::ObjectId Id);
  void emitRecord(vm::ObjectId Id, const Trailer &T, ByteTime Now,
                  bool Survived);
  SiteId localSite(SiteId StreamId) const {
    return StreamId < SiteMap.size() ? SiteMap[StreamId] : InvalidSite;
  }

  const ir::Program &P;
  ProfilerConfig Config;
  ProfileLog Log;
  DispatchSink Sink{*this};
  /// Stream site id -> id in Log.Sites. Stream ids are dense and arrive
  /// in order, so in practice this is the identity map.
  std::vector<SiteId> SiteMap;
  TrailerTable Dense;
  /// Hash-map fallback (Config.UseDenseTrailers = false), kept so the
  /// bench ladder can measure the dense table's win.
  std::unordered_map<vm::ObjectId, Trailer> Trailers;
  std::unordered_set<std::uint32_t> Excluded; ///< class indices
  ByteTime IntervalStart = 0; ///< last deep-GC boundary on the byte clock
  RecordSink *RecSink = nullptr;
  std::size_t PeakLive = 0;
};

/// Detached phase 2: replays the `.jdev` recording at \p Path through a
/// fresh DragProfiler and moves its log into \p Out. Returns false and
/// sets \p Err on a malformed or truncated recording.
bool replayProfile(const std::string &Path, const ir::Program &P,
                   ProfilerConfig Config, ProfileLog &Out,
                   std::string *Err = nullptr);

/// Streaming phase 2: replays the recording at \p Path, delivering every
/// finished record to \p Sink instead of materializing it. \p ShellOut
/// receives the record-free log shell (sites, GC samples, end time,
/// sampling params) -- everything a report needs except Records, which
/// stays empty. \p PeakTrailers (optional) receives the trailer-table
/// high-water mark.
bool replayProfileTo(const std::string &Path, const ir::Program &P,
                     ProfilerConfig Config, RecordSink &Sink,
                     ProfileLog &ShellOut, std::string *Err = nullptr,
                     std::size_t *PeakTrailers = nullptr);

} // namespace jdrag::profiler

#endif // JDRAG_PROFILER_DRAGPROFILER_H
