//===- profiler/DragProfiler.h - Phase-1 instrumentation --------*- C++ -*-===//
//
// Part of jdrag (PLDI 2001 "Heap Profiling for Space-Efficient Java").
//
//===----------------------------------------------------------------------===//
///
/// \file
/// DragProfiler implements the paper's instrumented-JVM phase: it keeps a
/// trailer per live object (in a side table keyed by immortal object id,
/// so the heap's byte accounting excludes the trailer exactly as the
/// paper specifies), timestamps every use on the byte clock (optionally
/// snapped to the start of the current deep-GC interval, mirroring the
/// paper's "all uses ... are performed at the beginning of the interval"
/// assumption), records nested allocation and last-use sites, and logs a
/// record when the object is reclaimed or survives termination.
///
/// Usage:
/// \code
///   DragProfiler Prof(Program, ProfilerConfig());
///   VMOptions Opts;
///   Opts.DeepGCIntervalBytes = 100 * KB; // the paper's interval
///   Opts.Observer = &Prof;
///   VirtualMachine VM(Program, Opts);
///   VM.run();
///   const ProfileLog &Log = Prof.log();
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef JDRAG_PROFILER_DRAGPROFILER_H
#define JDRAG_PROFILER_DRAGPROFILER_H

#include "profiler/ProfileLog.h"
#include "vm/Heap.h"

#include <unordered_map>
#include <unordered_set>

namespace jdrag::profiler {

/// Tuning knobs for phase 1.
struct ProfilerConfig {
  /// Nesting level of recorded call chains ("the level of nesting can be
  /// set in order to tradeoff more accurate information and speed").
  std::uint32_t SiteDepth = 4;
  /// Snap use timestamps to the last deep-GC boundary (paper behaviour).
  /// Disable for exact timestamps (ablation).
  bool SnapUseTimes = true;
  /// Classes whose instances are excluded from the log, mirroring the
  /// paper's exclusion of Class objects and class-reachable specials.
  std::vector<ir::ClassId> ExcludedClasses;
};

/// The phase-1 observer. Attach to a VirtualMachine, run, take the log.
class DragProfiler : public vm::VMObserver {
public:
  explicit DragProfiler(const ir::Program &P,
                        ProfilerConfig Config = ProfilerConfig());

  void onAllocate(vm::ObjectId Id, vm::Handle H, const vm::HeapObject &Obj,
                  std::span<const vm::CallFrameRef> Chain,
                  ByteTime Now) override;
  void onUse(vm::ObjectId Id, vm::UseKind Kind,
             std::span<const vm::CallFrameRef> Chain, bool DuringOwnInit,
             ByteTime Now) override;
  void onGCEnd(ByteTime Now, std::uint64_t ReachableBytes,
               std::uint64_t ReachableObjects) override;
  void onDeepGCEnd(ByteTime Now) override;
  void onCollect(vm::ObjectId Id, const vm::HeapObject &Obj,
                 ByteTime Now) override;
  void onSurvivor(vm::ObjectId Id, const vm::HeapObject &Obj,
                  ByteTime Now) override;
  void onTerminate(ByteTime Now) override;

  const ProfileLog &log() const { return Log; }
  ProfileLog takeLog() { return std::move(Log); }

  /// Live (not yet logged) object count -- should be 0 after a run.
  std::size_t liveTrailers() const { return Trailers.size(); }

private:
  struct Trailer {
    ir::ClassId Class;
    ir::ArrayKind AKind = ir::ArrayKind::Int;
    bool IsArray = false;
    std::uint32_t Bytes = 0;
    ByteTime AllocTime = 0;
    ByteTime FirstUseTime = 0;
    ByteTime LastUseTime = 0;
    SiteId AllocSite = InvalidSite;
    SiteId LastUseSite = InvalidSite;
    std::uint32_t UseCount = 0;
    bool UsedOutsideInit = false;
    bool Excluded = false;
  };

  void emitRecord(vm::ObjectId Id, const Trailer &T, ByteTime Now,
                  bool Survived);

  const ir::Program &P;
  ProfilerConfig Config;
  ProfileLog Log;
  std::unordered_map<vm::ObjectId, Trailer> Trailers;
  std::unordered_set<std::uint32_t> Excluded; ///< class indices
  ByteTime IntervalStart = 0; ///< last deep-GC boundary on the byte clock
};

} // namespace jdrag::profiler

#endif // JDRAG_PROFILER_DRAGPROFILER_H
