//===- profiler/Sampling.h - Size-weighted allocation sampling --*- C++ -*-===//
//
// Part of jdrag (PLDI 2001 "Heap Profiling for Space-Efficient Java").
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Byte-interval geometric allocation sampling (the heapprofd scheme) and
/// the Horvitz-Thompson estimator math that scales a sampled recording
/// back to an unbiased estimate of the exact profile.
///
/// The policy is a countdown over the allocation byte stream: sample
/// points are laid down a geometric(1/rate) number of bytes apart, so an
/// allocation of S bytes is selected with probability
///
///     p(S) = 1 - exp(-S / rate)
///
/// -- size-weighted Bernoulli sampling where big objects (which dominate
/// drag) are almost always kept and tiny ones are kept roughly S/rate of
/// the time. A selected object's contribution to any byte-weighted sum is
/// scaled by the inverse-probability weight 1/p(S), which makes the
/// scaled sum an unbiased (Horvitz-Thompson) estimator of the exact sum.
///
//===----------------------------------------------------------------------===//

#ifndef JDRAG_PROFILER_SAMPLING_H
#define JDRAG_PROFILER_SAMPLING_H

#include "profiler/EventStream.h"
#include "support/Random.h"

#include <cmath>
#include <cstdint>

namespace jdrag::profiler {

/// Probability that an allocation of \p Bytes is selected under byte
/// interval \p SampleBytes. Rate 0 means sampling is off: everything is
/// selected with certainty.
inline double sampleProbability(std::uint64_t Bytes,
                                std::uint64_t SampleBytes) {
  if (SampleBytes == 0 || Bytes == 0)
    return 1.0;
  // -expm1(-x) = 1 - exp(-x) without cancellation for small x.
  return -std::expm1(-static_cast<double>(Bytes) /
                     static_cast<double>(SampleBytes));
}

/// Inverse-probability (Horvitz-Thompson) weight for a sampled
/// allocation of \p Bytes.
inline double sampleWeight(std::uint64_t Bytes, std::uint64_t SampleBytes) {
  return 1.0 / sampleProbability(Bytes, SampleBytes);
}

/// Variance contribution of one sampled record whose exact value is
/// \p Value and whose selection probability is \p P: Var for a single
/// inclusion indicator is (1-p)/p^2 * value^2. Summed across records
/// this is the standard HT variance estimate (inclusions are
/// independent under the geometric point process, to first order).
inline double sampleVarianceTerm(double Value, double P) {
  return (1.0 - P) / (P * P) * Value * Value;
}

/// Half-width of a normal-approximation 95% confidence interval for an
/// HT-estimated sum with accumulated variance \p Variance.
inline double ci95(double Variance) {
  return Variance > 0.0 ? 1.96 * std::sqrt(Variance) : 0.0;
}

/// The sampling decision itself: a deterministic, seedable countdown of
/// bytes until the next sample point. Allocation order and sizes fully
/// determine which objects are selected, so recordings are reproducible
/// (same seed + same program => identical .jdev bytes).
class SamplePolicy {
public:
  SamplePolicy() : Prng(SamplingParams{}.SampleSeed) {}

  explicit SamplePolicy(const SamplingParams &P)
      : Rate(P.SampleBytes), Prng(P.SampleSeed) {
    if (Rate != 0)
      NextGap = nextGap();
  }

  bool enabled() const { return Rate != 0; }

  /// Advance the byte clock by one allocation of \p Bytes and decide
  /// whether it carries a sample point. With sampling off every
  /// allocation is selected.
  bool sampleAllocation(std::uint64_t Bytes) {
    if (Rate == 0)
      return true;
    if (Bytes < NextGap) {
      NextGap -= Bytes;
      return false;
    }
    // The allocation spans one or more sample points; consume them and
    // carry the remainder of the last gap into the next allocation.
    std::uint64_t Left = Bytes - NextGap;
    std::uint64_t G = nextGap();
    while (G <= Left) {
      Left -= G;
      G = nextGap();
    }
    NextGap = G - Left;
    return true;
  }

private:
  std::uint64_t nextGap() {
    // Geometric with mean Rate, via inverse-CDF on the exponential;
    // clamped to >= 1 so the countdown always advances.
    double U = Prng.nextDouble(); // [0, 1), so log1p(-U) is finite
    double G = -static_cast<double>(Rate) * std::log1p(-U);
    return G < 1.0 ? 1 : static_cast<std::uint64_t>(G);
  }

  std::uint64_t Rate = 0;
  std::uint64_t NextGap = 0;
  SplitMix64 Prng;
};

} // namespace jdrag::profiler

#endif // JDRAG_PROFILER_SAMPLING_H
