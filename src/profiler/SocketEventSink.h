//===- profiler/SocketEventSink.h - Stream to a jdragd daemon ---*- C++ -*-===//
//
// Part of jdrag (PLDI 2001 "Heap Profiling for Space-Efficient Java").
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The VM side of the out-of-process collector: an EventSink that
/// streams flushed chunks to a jdragd daemon over a Unix or TCP socket
/// (docs/daemon.md describes the session protocol), built so that *no
/// daemon failure can take the instrumented VM down with it*:
///
///   - connect happens lazily with a bounded timeout; an unreachable
///     daemon costs the retry budget once, not a hang;
///   - a broken connection is retried with exponential backoff +
///     deterministic jitter (shared BackoffPolicy); each new connection
///     is a fresh session whose chunk sequence numbers restart at zero,
///     so every daemon-side session recording is a standalone valid
///     `.jdev` stream;
///   - backpressure follows AsyncEventSink's policies: Block waits for
///     the socket (lossless), Drop sheds a chunk the kernel cannot take
///     immediately and accounts it;
///   - past the reconnect budget the sink *fails over* to a local spool
///     file -- a plain `.jdev` that `jdrag send` forwards later -- so
///     data outlives the outage. Spooled chunks are accounted apart from
///     drops (StreamHealth::SpooledChunks/Failovers); intact() stays
///     true for a fully-spooled stream.
///
/// The end-to-end contract: every chunk the EventBuffer flushes either
/// reaches a daemon session, reaches the spool, or is counted dropped.
/// A v4 chunk index footer is forwarded verbatim only when the
/// destination received the *entire* stream unrenumbered (it would lie
/// otherwise); a swallowed footer is not data loss -- footerless v4
/// streams are valid and readers rebuild the index.
///
/// Fault injection for tests mirrors FaultInjectionSink: a
/// SocketFaultPlan makes rawSend() short-write on a deterministic
/// cadence or fail once with ECONNRESET, exercising the partial-write,
/// reconnect and failover paths without a flaky network.
///
//===----------------------------------------------------------------------===//

#ifndef JDRAG_PROFILER_SOCKETEVENTSINK_H
#define JDRAG_PROFILER_SOCKETEVENTSINK_H

#include "profiler/AsyncEventSink.h"
#include "profiler/EventStream.h"

#include <atomic>
#include <functional>
#include <memory>
#include <string>

namespace jdrag::profiler {

/// Deterministic socket-level fault schedule (sibling of
/// FaultInjectionSink::Plan). Applied inside rawSend(), under the real
/// send-loop, so short sends and connection resets exercise the same
/// code paths a hostile network would.
struct SocketFaultPlan {
  /// Once this many bytes were sent in total, the next send fails with
  /// ECONNRESET -- once (the plan disarms so the reconnect succeeds).
  std::uint64_t ResetAfterBytes = ~0ull;
  /// Cap every ShortSendEvery-th send() to this many bytes (a partial
  /// write the send loop must complete). 0 disables.
  std::size_t ShortSendBytes = 0;
  std::uint32_t ShortSendEvery = 0;
};

class SocketEventSink : public EventSink {
public:
  /// Same Block/Drop semantics as the async writer queue.
  using QueueFullPolicy = AsyncEventSink::QueueFullPolicy;

  struct Options {
    /// Daemon endpoint: `unix:/path/to.sock` or `tcp:HOST:PORT`.
    std::string Connect;
    /// Local `.jdev` the sink degrades to past the reconnect budget
    /// (empty = no spool; undeliverable chunks are dropped instead).
    std::string SpoolPath;
    /// Client name carried by HELLO (shows up in `CLIENTS`).
    std::string Name = "vm";
    /// Pid carried by HELLO; 0 = this process.
    std::uint64_t Pid = 0;
    /// Wire format of the chunks this sink will carry; stamped on the
    /// session (and the spool header). Must match the EventBuffer's.
    WireFormat Format = DefaultWireFormat;
    /// Sampling params behind the stream; carried by HELLO so the
    /// daemon scales this session's estimates, and stamped on the spool
    /// header so a degraded recording stays self-describing.
    SamplingParams Sampling;
    /// Compress chunk payloads (LZ, support/Lz.h) before they leave the
    /// process: the daemon receives -- and records verbatim -- v6
    /// frames, and a degraded spool holds the same compressed bytes.
    /// Requires Format == V6; compression happens once, here, so the
    /// wire and the spool never diverge. Ignored otherwise.
    bool Compress = false;
    /// Reconnect/retry schedule (shared with FileEventSink). Jitter on
    /// by default: a daemon restart must not be met by a thundering
    /// herd of lock-step clients.
    BackoffPolicy Backoff{/*MaxRetries=*/5, /*BaseDelayMicros=*/1000,
                          /*MaxDelayShift=*/7, /*Jitter=*/true};
    /// Bound on one connect attempt.
    int ConnectTimeoutMs = 2000;
    /// Block: wait for the kernel buffer (lossless backpressure).
    /// Drop: shed a chunk the kernel cannot take at all right now.
    QueueFullPolicy Policy = QueueFullPolicy::Block;
    /// Bound on draining one chunk once partially sent (both policies;
    /// a committed chunk must finish or the connection is declared
    /// wedged and torn down). 0 = wait forever.
    int SendTimeoutMs = 10000;
    /// Test fault schedule (none by default).
    SocketFaultPlan Fault;
    /// Test hook: called after every chunk fully handed to the daemon,
    /// with the running count of delivered chunks.
    std::function<void(std::uint64_t)> OnChunkSent;
  };

  explicit SocketEventSink(Options Opt);
  ~SocketEventSink() override;
  SocketEventSink(const SocketEventSink &) = delete;
  SocketEventSink &operator=(const SocketEventSink &) = delete;

  /// Eagerly dials the daemon (writeChunk connects lazily otherwise).
  /// False if the connect budget was exhausted -- the sink is still
  /// usable; it starts in spool/drop degradation.
  bool connectNow();

  bool writeChunk(const std::byte *Data, std::size_t Size) override;
  /// Sends BYE on a live session, finishes the spool if one was
  /// opened. True only if no chunk was dropped (spooling is not loss).
  bool finish() override;

  int lastErrno() const override { return LastErr; }
  std::uint32_t retries() const override { return Retries; }
  std::uint64_t droppedChunks() const override { return DroppedChunks; }
  std::uint64_t droppedBytes() const override { return DroppedBytes; }
  std::uint64_t spooledChunks() const override { return SpooledChunks; }
  std::uint64_t spooledBytes() const override { return SpooledBytes; }
  std::uint32_t failovers() const override { return Failovers; }

  /// Chunks fully delivered over the socket (all sessions).
  std::uint64_t chunksSent() const { return ChunksSent; }
  /// Connections established (each is a fresh daemon-side session).
  std::uint32_t sessionsOpened() const { return Sessions; }
  /// v4 index footers deliberately not forwarded because the
  /// destination did not hold the whole stream (not data loss).
  std::uint32_t footersSwallowed() const { return FootersSwallowed; }
  /// Compression accounting (0 both when not compressing): payload
  /// bytes before and after the LZ pass, data chunks only.
  std::uint64_t rawPayloadBytes() const {
    return Comp ? Comp->rawPayloadBytes() : 0;
  }
  std::uint64_t wirePayloadBytes() const {
    return Comp ? Comp->wirePayloadBytes() : 0;
  }
  bool connected() const { return Fd >= 0; }
  bool spooling() const { return SpoolActive; }

protected:
  /// Send seam (tests override; the default applies Options::Fault then
  /// ::send with MSG_NOSIGNAL). Returns bytes sent, or -1 with errno.
  virtual long rawSend(const void *Data, std::size_t Size);

private:
  bool ensureConnected();
  bool dialOnce();
  void teardown();
  bool sendLoop(const std::byte *Data, std::size_t Size, bool &FirstByteSent);
  bool deliverToDaemon(const std::byte *Data, std::size_t Size);
  void enterSpoolMode();
  bool spoolChunk(const std::byte *Data, std::size_t Size);
  void accountDrop(std::size_t Size);

  Options Opt;
  int Fd = -1;
  bool ConnectGaveUp = false; ///< budget exhausted; stay degraded
  bool SpoolActive = false;
  bool SpoolFailed = false;
  bool Finished = false;
  std::unique_ptr<FileEventSink> Spool;
  std::unique_ptr<ChunkCompressor> Comp; ///< non-null when compressing

  // Per-destination sequence renumbering. Each daemon session and the
  // spool restart chunk sequences at 0 so every destination is a
  // standalone stream; Identity tracks whether the renumbering has been
  // the identity map since stream start (the footer-forwarding gate).
  std::uint32_t SessionSeq = 0;
  std::uint32_t SpoolSeq = 0;
  bool SessionIdentity = true;
  bool SpoolIdentity = true;
  std::vector<std::byte> Scratch;

  std::uint64_t TotalRawSent = 0; ///< fault-plan odometer
  std::uint32_t RawSends = 0;     ///< fault-plan cadence counter
  bool FaultReset = false;        ///< one-shot reset already fired

  // Health counters. Atomic because when this sink sits behind an
  // AsyncEventSink only the writer thread advances them, but the
  // producer thread reads them mid-run through the accessors above
  // (EventBuffer::health()); each is an independent momentary snapshot,
  // exact once finish() has joined the writer.
  std::atomic<std::uint64_t> ChunksSent{0};
  std::atomic<std::uint64_t> BytesSent{0};
  std::atomic<std::uint64_t> DroppedChunks{0};
  std::atomic<std::uint64_t> DroppedBytes{0};
  std::atomic<std::uint64_t> SpooledChunks{0};
  std::atomic<std::uint64_t> SpooledBytes{0};
  std::atomic<std::uint32_t> Failovers{0};
  std::atomic<std::uint32_t> FootersSwallowed{0};
  std::atomic<std::uint32_t> Retries{0};
  std::atomic<std::uint32_t> Sessions{0};
  std::atomic<int> LastErr{0};
};

} // namespace jdrag::profiler

#endif // JDRAG_PROFILER_SOCKETEVENTSINK_H
