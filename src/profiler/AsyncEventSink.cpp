//===- profiler/AsyncEventSink.cpp ----------------------------------------===//

#include "profiler/AsyncEventSink.h"

using namespace jdrag;
using namespace jdrag::profiler;

AsyncEventSink::AsyncEventSink(EventSink &Inner, Options O)
    : Inner(Inner), Opt(O) {
  if (Opt.QueueChunks == 0)
    Opt.QueueChunks = 1;
  Writer = std::thread([this] { writerLoop(); });
}

AsyncEventSink::~AsyncEventSink() {
  // Join without finishing the inner sink: whether the stream is
  // complete is finish()'s verdict, not the destructor's.
  if (Writer.joinable()) {
    {
      std::lock_guard<std::mutex> L(Mu);
      Stopping = true;
    }
    NotEmpty.notify_all();
    Writer.join();
  }
}

void AsyncEventSink::dropQueueLocked() {
  for (const std::vector<std::byte> &B : Queue) {
    DroppedChunks.fetch_add(1, std::memory_order_relaxed);
    DroppedBytes.fetch_add(B.size(), std::memory_order_relaxed);
  }
  Queue.clear();
  NotFull.notify_all();
}

void AsyncEventSink::writerLoop() {
  while (true) {
    std::vector<std::byte> Buf;
    {
      std::unique_lock<std::mutex> L(Mu);
      NotEmpty.wait(L, [&] { return !Queue.empty() || Stopping; });
      if (Queue.empty())
        return; // Stopping and fully drained
      Buf = std::move(Queue.front());
      Queue.pop_front();
    }

    bool Ok = !InnerFailed && Inner.writeChunk(Buf.data(), Buf.size());
    // Inner counters are only touched on this thread between writes;
    // snapshot them into atomics so the producer can read health
    // mid-run without racing the write.
    InnerErrno.store(Inner.lastErrno(), std::memory_order_relaxed);
    InnerRetries.store(Inner.retries(), std::memory_order_relaxed);

    std::lock_guard<std::mutex> L(Mu);
    if (Ok) {
      Forwarded.fetch_add(1, std::memory_order_relaxed);
      Buf.clear();
      FreeList.push_back(std::move(Buf));
      NotFull.notify_one();
    } else {
      // The producer was told this chunk was accepted, so the loss is
      // ours to account: the failed chunk and everything still queued.
      InnerFailed = true;
      DroppedChunks.fetch_add(1, std::memory_order_relaxed);
      DroppedBytes.fetch_add(Buf.size(), std::memory_order_relaxed);
      dropQueueLocked();
    }
  }
}

bool AsyncEventSink::writeChunk(const std::byte *Data, std::size_t Size) {
  std::unique_lock<std::mutex> L(Mu);
  if (InnerFailed || Stopping)
    return false; // refused outright: the producer accounts this drop

  if (Queue.size() >= Opt.QueueChunks) {
    if (Opt.Policy == QueueFullPolicy::Drop) {
      // Accepted-then-shed: bounded overhead at the cost of sequence
      // gaps, which the decoder detects and salvage recovers around.
      DroppedChunks.fetch_add(1, std::memory_order_relaxed);
      DroppedBytes.fetch_add(Size, std::memory_order_relaxed);
      return true;
    }
    NotFull.wait(L, [&] {
      return Queue.size() < Opt.QueueChunks || InnerFailed || Stopping;
    });
    if (InnerFailed || Stopping)
      return false;
  }

  std::vector<std::byte> Buf;
  if (!FreeList.empty()) {
    Buf = std::move(FreeList.back());
    FreeList.pop_back();
  }
  Buf.assign(Data, Data + Size);
  Queue.push_back(std::move(Buf));
  L.unlock();
  NotEmpty.notify_one();
  return true;
}

bool AsyncEventSink::finish() {
  if (Finished)
    return FinishOk;
  Finished = true;
  if (Writer.joinable()) {
    {
      std::lock_guard<std::mutex> L(Mu);
      Stopping = true;
    }
    NotEmpty.notify_all();
    Writer.join(); // drains the queue before exiting
  }
  bool InnerOk = Inner.finish();
  InnerErrno.store(Inner.lastErrno(), std::memory_order_relaxed);
  InnerRetries.store(Inner.retries(), std::memory_order_relaxed);
  FinishOk = InnerOk && !InnerFailed &&
             DroppedChunks.load(std::memory_order_relaxed) == 0;
  return FinishOk;
}

int AsyncEventSink::lastErrno() const {
  return InnerErrno.load(std::memory_order_relaxed);
}

std::uint32_t AsyncEventSink::retries() const {
  return InnerRetries.load(std::memory_order_relaxed);
}

std::uint64_t AsyncEventSink::droppedChunks() const {
  return DroppedChunks.load(std::memory_order_relaxed) +
         Inner.droppedChunks();
}

std::uint64_t AsyncEventSink::droppedBytes() const {
  return DroppedBytes.load(std::memory_order_relaxed) + Inner.droppedBytes();
}
