//===- profiler/DragProfiler.cpp ------------------------------------------===//

#include "profiler/DragProfiler.h"

using namespace jdrag;
using namespace jdrag::profiler;
using namespace jdrag::vm;

DragProfiler::DragProfiler(const ir::Program &P, ProfilerConfig Config)
    : P(P), Config(std::move(Config)) {
  for (ir::ClassId C : this->Config.ExcludedClasses)
    Excluded.insert(C.Index);
  // Typical runs intern a few hundred sites and log thousands of
  // objects; reserving up front keeps reallocation out of the measured
  // consumer path.
  SiteMap.reserve(256);
  Log.Records.reserve(1024);
  Log.GCSamples.reserve(64);
}

void DragProfiler::onSite(SiteId Id, std::span<const SiteFrame> Frames) {
  // Producers define sites in id order (0, 1, 2, ...), so re-interning in
  // arrival order reproduces their ids; the map tolerates gaps anyway.
  SiteId Local =
      Log.Sites.internFrames(std::vector<SiteFrame>(Frames.begin(),
                                                    Frames.end()));
  if (Id >= SiteMap.size())
    SiteMap.resize(Id + 1, InvalidSite);
  SiteMap[Id] = Local;
}

void DragProfiler::onEvent(const EventRecord &E) {
  switch (E.kind()) {
  case EventKind::Alloc: {
    Trailer &T = Config.UseDenseTrailers
                     ? Dense.insert(E.Id)
                     : Trailers[E.Id];
    T.Class = ir::ClassId(static_cast<std::uint32_t>(E.Arg1));
    T.AKind = static_cast<ir::ArrayKind>(E.Sub);
    T.IsArray = E.Flags & 1;
    T.Bytes = static_cast<std::uint32_t>(E.Arg0);
    T.AllocTime = E.Time;
    T.FirstUseTime = E.Time;
    T.LastUseTime = E.Time; // never-used objects drag from creation
    T.AllocSite = localSite(E.Site);
    T.Excluded = !T.IsArray && Excluded.count(T.Class.Index) != 0;
    PeakLive = std::max(PeakLive, liveTrailers());
    break;
  }
  case EventKind::Use: {
    Trailer *T = findTrailer(E.Id);
    if (!T)
      break; // VM-internal object (e.g. the preallocated OOM instance)
    bool DuringOwnInit = E.Flags & 1;
    // Paper section 2.1: "assuming that all uses of an object in the
    // interval between consecutive garbage collection cycles are
    // performed at the beginning of the interval."
    ByteTime UseTime =
        Config.SnapUseTimes ? std::max(IntervalStart, T->AllocTime) : E.Time;
    // FirstUseTime anchors the R&R lag phase: the first use *outside*
    // construction (initialization uses belong to the object's birth).
    if (!DuringOwnInit && !T->UsedOutsideInit)
      T->FirstUseTime = std::max(UseTime, T->AllocTime);
    if (UseTime > T->LastUseTime)
      T->LastUseTime = UseTime;
    T->LastUseSite = localSite(E.Site);
    ++T->UseCount;
    if (!DuringOwnInit)
      T->UsedOutsideInit = true;
    break;
  }
  case EventKind::GCEnd:
    Log.GCSamples.push_back({E.Time, E.Arg0, E.Arg1});
    break;
  case EventKind::DeepGCEnd:
    IntervalStart = E.Time;
    break;
  case EventKind::Collect:
  case EventKind::Survivor: {
    Trailer *T = findTrailer(E.Id);
    if (!T)
      break;
    emitRecord(E.Id, *T, E.Time,
               /*Survived=*/E.kind() == EventKind::Survivor);
    eraseTrailer(E.Id);
    break;
  }
  case EventKind::Terminate:
    Log.EndTime = E.Time;
    break;
  case EventKind::DefineSite:
    break; // delivered via onSite
  }
}

DragProfiler::Trailer *DragProfiler::findTrailer(ObjectId Id) {
  if (Config.UseDenseTrailers)
    return Dense.find(Id);
  auto It = Trailers.find(Id);
  return It == Trailers.end() ? nullptr : &It->second;
}

void DragProfiler::eraseTrailer(ObjectId Id) {
  if (Config.UseDenseTrailers)
    Dense.erase(Id);
  else
    Trailers.erase(Id);
}

void DragProfiler::emitRecord(ObjectId Id, const Trailer &T, ByteTime Now,
                              bool Survived) {
  if (T.Excluded)
    return;
  ObjectRecord R;
  R.Id = Id;
  R.Class = T.Class;
  R.AKind = T.AKind;
  R.IsArray = T.IsArray;
  R.Bytes = T.Bytes;
  R.AllocTime = T.AllocTime;
  R.FirstUseTime = T.FirstUseTime;
  R.LastUseTime = T.LastUseTime;
  R.CollectTime = Now;
  R.AllocSite = T.AllocSite;
  R.LastUseSite = T.LastUseSite;
  R.UseCount = T.UseCount;
  R.UsedOutsideInit = T.UsedOutsideInit;
  R.SurvivedToEnd = Survived;
  if (RecSink)
    RecSink->onRecord(R);
  else
    Log.Records.push_back(R);
}

bool jdrag::profiler::replayProfile(const std::string &Path,
                                    const ir::Program &P,
                                    ProfilerConfig Config, ProfileLog &Out,
                                    std::string *Err) {
  DragProfiler Prof(P, std::move(Config));
  StreamHeaderInfo Info;
  if (!replayFile(Path, Prof, Err, &Info))
    return false;
  Out = Prof.takeLog();
  // A v5 recording is sampled: stamp the params so analysis scales.
  // Exact logs normalize to {0, 0} -- the seed is meaningless without a
  // rate, and a canonical form keeps exact logs bit-identical no matter
  // which pipeline produced them.
  Out.SampleRate = Info.Sampling.SampleBytes;
  Out.SampleSeed = Info.Sampling.enabled() ? Info.Sampling.SampleSeed : 0;
  Out.Compressed = Info.Compressed;
  return true;
}

bool jdrag::profiler::replayProfileTo(const std::string &Path,
                                      const ir::Program &P,
                                      ProfilerConfig Config, RecordSink &Sink,
                                      ProfileLog &ShellOut, std::string *Err,
                                      std::size_t *PeakTrailers) {
  DragProfiler Prof(P, std::move(Config));
  Prof.setRecordSink(&Sink);
  StreamHeaderInfo Info;
  if (!replayFile(Path, Prof, Err, &Info))
    return false;
  if (PeakTrailers)
    *PeakTrailers = Prof.peakLiveTrailers();
  ShellOut = Prof.takeLog();
  // Same sampling-params stamping as replayProfile: canonical {0, 0}
  // for exact streams so shells compare bit-identical across pipelines.
  ShellOut.SampleRate = Info.Sampling.SampleBytes;
  ShellOut.SampleSeed = Info.Sampling.enabled() ? Info.Sampling.SampleSeed : 0;
  ShellOut.Compressed = Info.Compressed;
  return true;
}
