//===- profiler/DragProfiler.cpp ------------------------------------------===//

#include "profiler/DragProfiler.h"

using namespace jdrag;
using namespace jdrag::profiler;
using namespace jdrag::vm;

DragProfiler::DragProfiler(const ir::Program &P, ProfilerConfig Config)
    : P(P), Config(std::move(Config)) {
  for (ir::ClassId C : this->Config.ExcludedClasses)
    Excluded.insert(C.Index);
}

void DragProfiler::onAllocate(ObjectId Id, Handle, const HeapObject &Obj,
                              std::span<const CallFrameRef> Chain,
                              ByteTime Now) {
  Trailer T;
  T.Class = Obj.Class;
  T.AKind = Obj.AKind;
  T.IsArray = Obj.isArray();
  T.Bytes = Obj.AccountedBytes;
  T.AllocTime = Now;
  T.FirstUseTime = Now;
  T.LastUseTime = Now; // never-used objects drag from creation
  T.AllocSite = Log.Sites.intern(Chain, Config.SiteDepth);
  T.Excluded = !Obj.isArray() && Excluded.count(Obj.Class.Index) != 0;
  Trailers.emplace(Id, T);
}

void DragProfiler::onUse(ObjectId Id, UseKind,
                         std::span<const CallFrameRef> Chain,
                         bool DuringOwnInit, ByteTime Now) {
  auto It = Trailers.find(Id);
  if (It == Trailers.end())
    return; // VM-internal object (e.g. the preallocated OOM instance)
  Trailer &T = It->second;
  // Paper section 2.1: "assuming that all uses of an object in the
  // interval between consecutive garbage collection cycles are performed
  // at the beginning of the interval."
  ByteTime UseTime = Config.SnapUseTimes ? std::max(IntervalStart, T.AllocTime)
                                         : Now;
  // FirstUseTime anchors the R&R lag phase: the first use *outside*
  // construction (initialization uses belong to the object's birth).
  if (!DuringOwnInit && !T.UsedOutsideInit)
    T.FirstUseTime = std::max(UseTime, T.AllocTime);
  if (UseTime > T.LastUseTime)
    T.LastUseTime = UseTime;
  T.LastUseSite = Log.Sites.intern(Chain, Config.SiteDepth);
  ++T.UseCount;
  if (!DuringOwnInit)
    T.UsedOutsideInit = true;
}

void DragProfiler::onGCEnd(ByteTime Now, std::uint64_t ReachableBytes,
                           std::uint64_t ReachableObjects) {
  Log.GCSamples.push_back({Now, ReachableBytes, ReachableObjects});
}

void DragProfiler::onDeepGCEnd(ByteTime Now) { IntervalStart = Now; }

void DragProfiler::emitRecord(ObjectId Id, const Trailer &T, ByteTime Now,
                              bool Survived) {
  if (T.Excluded)
    return;
  ObjectRecord R;
  R.Id = Id;
  R.Class = T.Class;
  R.AKind = T.AKind;
  R.IsArray = T.IsArray;
  R.Bytes = T.Bytes;
  R.AllocTime = T.AllocTime;
  R.FirstUseTime = T.FirstUseTime;
  R.LastUseTime = T.LastUseTime;
  R.CollectTime = Now;
  R.AllocSite = T.AllocSite;
  R.LastUseSite = T.LastUseSite;
  R.UseCount = T.UseCount;
  R.UsedOutsideInit = T.UsedOutsideInit;
  R.SurvivedToEnd = Survived;
  Log.Records.push_back(R);
}

void DragProfiler::onCollect(ObjectId Id, const HeapObject &, ByteTime Now) {
  auto It = Trailers.find(Id);
  if (It == Trailers.end())
    return;
  emitRecord(Id, It->second, Now, /*Survived=*/false);
  Trailers.erase(It);
}

void DragProfiler::onSurvivor(ObjectId Id, const HeapObject &, ByteTime Now) {
  auto It = Trailers.find(Id);
  if (It == Trailers.end())
    return;
  emitRecord(Id, It->second, Now, /*Survived=*/true);
  Trailers.erase(It);
}

void DragProfiler::onTerminate(ByteTime Now) { Log.EndTime = Now; }
