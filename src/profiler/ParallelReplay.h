//===- profiler/ParallelReplay.h - Sharded drag replay ----------*- C++ -*-===//
//
// Part of jdrag (PLDI 2001 "Heap Profiling for Space-Efficient Java").
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Map-reduce phase 2: replays a `.jdev` recording through N decode
/// threads and merges their partial trailer tables into a ProfileLog
/// that is bit-identical to the sequential replayProfile() result.
///
/// The map side partitions the stream's chunk index (parsed from a v4
/// footer, or rebuilt with one sequential pass for v2/v3 and footerless
/// v4 files) into contiguous chunk ranges balanced by payload bytes.
/// Each worker verifies its chunks (magic, sequence, CRC-32C) and
/// decodes them independently: v4 chunks are self-contained (per-chunk
/// time baseline, record-aligned), while v2/v3 workers seed the time
/// delta chain from the rebuilt index and finish a range-straddling
/// tail record by reading into the next range's head bytes.
///
/// The reduce side folds the per-shard partials in shard order:
/// allocation facts are first-wins, last-use times fold as a max,
/// per-shard uses that happened before the shard's first deep-GC
/// boundary are kept *symbolic* and resolved against the previous
/// shard's exit boundary at merge time (so SnapUseTimes semantics
/// survive sharding exactly), and object records are emitted in the
/// stream order of their Collect/Survivor events.
///
/// Trust model: a footer is a producer claim. Workers re-verify every
/// structural fact they rely on (header fields, CRC, record alignment,
/// per-chunk record counts); a lying footer triggers one index rebuild
/// and re-shard, and any other failure falls back to the sequential
/// path, so the parallel entry point never crashes on -- and never
/// disagrees with sequential replay about -- a damaged file.
///
//===----------------------------------------------------------------------===//

#ifndef JDRAG_PROFILER_PARALLELREPLAY_H
#define JDRAG_PROFILER_PARALLELREPLAY_H

#include "profiler/DragProfiler.h"

namespace jdrag::profiler {

/// Worker count for "use all cores": hardware_concurrency, at least 1.
unsigned defaultReplayJobs();

/// Replays the `.jdev` recording at \p Path through \p Jobs decode
/// threads and moves the merged log into \p Out. The result (records,
/// GC samples, site table, end time -- every serialized byte) is
/// identical to replayProfile()'s for any readable recording. Jobs of
/// 0 means defaultReplayJobs(); Jobs <= 1, single-chunk streams, and
/// any pre-shard validation failure run the sequential path, so error
/// behaviour on malformed files matches replayProfile() exactly.
bool replayProfileParallel(const std::string &Path, const ir::Program &P,
                           ProfilerConfig Config, unsigned Jobs,
                           ProfileLog &Out, std::string *Err = nullptr);

/// Per-shard fold hooks for the streaming analysis engine: the sharded
/// replay delivers finished records here instead of materializing them,
/// so the caller can fold shard-local partial aggregates and merge them
/// (analysis/RecordFold.h) without an O(objects) record vector.
///
/// Record site ids are *stream* ids; resolve them through the SiteMap
/// the driver returns (in the sequential fallback the map is the
/// identity, since records already carry log-local ids).
class ShardFoldSink {
public:
  virtual ~ShardFoldSink() = default;

  /// Called before each decode attempt (a footer-distrusting retry
  /// decodes the stream again) with the number of shards; must drop any
  /// state folded by a previous attempt.
  virtual void beginAttempt(unsigned ShardCount) = 0;

  /// A record whose whole lifetime fell inside shard \p Shard, emitted
  /// during decode. Called *concurrently* from the shard worker
  /// threads, but any two calls with the same \p Shard value are
  /// ordered -- keep per-shard state and merge after the replay.
  virtual void onShardRecord(unsigned Shard, const ObjectRecord &R) = 0;

  /// A shard-boundary-crossing record, emitted by the single-threaded
  /// merge step in end-event stream order.
  virtual void onMergedRecord(const ObjectRecord &R) = 0;
};

/// Streaming counterpart of replayProfileParallel: same sharding, trust
/// model and fallback ladder, but every finished record is delivered to
/// \p Sink and \p Shell receives the record-free log shell (sites, GC
/// samples, end time, sampling params). \p SiteMapOut maps the stream
/// site ids carried by the sink's records to Shell.Sites ids; pass each
/// fold to RecordFold::remapSites(SiteMapOut) after the call.
bool replayProfileParallelFold(const std::string &Path, const ir::Program &P,
                               ProfilerConfig Config, unsigned Jobs,
                               ShardFoldSink &Sink, ProfileLog &Shell,
                               std::vector<SiteId> &SiteMapOut,
                               std::string *Err = nullptr);

} // namespace jdrag::profiler

#endif // JDRAG_PROFILER_PARALLELREPLAY_H
