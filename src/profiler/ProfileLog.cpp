//===- profiler/ProfileLog.cpp --------------------------------------------===//

#include "profiler/ProfileLog.h"

#include <cstdio>
#include <memory>

using namespace jdrag;
using namespace jdrag::profiler;

SpaceTime ProfileLog::totalDrag() const {
  SpaceTime Sum = 0;
  for (const ObjectRecord &R : Records)
    Sum += R.drag();
  return Sum;
}

SpaceTime ProfileLog::reachableIntegral() const {
  SpaceTime Sum = 0;
  for (const ObjectRecord &R : Records)
    Sum += static_cast<SpaceTime>(R.Bytes) *
           static_cast<SpaceTime>(R.lifeTime());
  return Sum;
}

SpaceTime ProfileLog::inUseIntegral() const {
  SpaceTime Sum = 0;
  for (const ObjectRecord &R : Records)
    Sum += static_cast<SpaceTime>(R.Bytes) *
           static_cast<SpaceTime>(R.inUseTime());
  return Sum;
}

namespace {

// Format v07: magic, u32 version, u32 record size (layout check), then
// EndTime, delivery accounting (u8 Complete, u64 dropped chunks/bytes,
// u32 retries, i32 last errno from the recording's StreamHealth), the
// sampling params behind the recording (u64 rate, u64 seed; rate 0 =
// exact), u8 compressed-provenance flag, sites, records, GC samples.
// The version and record-size fields plus file-size validation of every
// count make corrupt, truncated, or wrong-version files fail cleanly
// instead of producing garbage records (or huge blind reserves). v05
// added the retry/errno counters; v06 added the sampling params; v07
// added the compressed flag (readers reject older magics outright,
// matching prior bumps).
constexpr std::uint64_t LogMagic = ProfileLogMagic; // "jdragv07"
constexpr std::uint32_t LogVersion = 7;

struct FileCloser {
  void operator()(std::FILE *F) const {
    if (F)
      std::fclose(F);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

template <typename T> bool writePod(std::FILE *F, const T &V) {
  return std::fwrite(&V, sizeof(T), 1, F) == 1;
}
template <typename T> bool readPod(std::FILE *F, T &V) {
  return std::fread(&V, sizeof(T), 1, F) == 1;
}

/// Fixed-width on-disk record (kept independent of in-memory layout).
struct DiskRecord {
  std::uint64_t Id;
  std::uint32_t ClassIndex;
  std::uint8_t AKind;
  std::uint8_t IsArray;
  std::uint8_t UsedOutsideInit;
  std::uint8_t SurvivedToEnd;
  std::uint32_t Bytes;
  std::uint32_t UseCount;
  std::uint64_t AllocTime;
  std::uint64_t FirstUseTime;
  std::uint64_t LastUseTime;
  std::uint64_t CollectTime;
  std::uint32_t AllocSite;
  std::uint32_t LastUseSite;
};

struct DiskFrame {
  std::uint32_t MethodIndex;
  std::uint32_t Pc;
  std::uint32_t Line;
};

} // namespace

bool ProfileLog::writeFile(const std::string &Path) const {
  FilePtr F(std::fopen(Path.c_str(), "wb"));
  if (!F)
    return false;
  std::uint32_t RecordBytes = sizeof(DiskRecord);
  if (!writePod(F.get(), LogMagic) || !writePod(F.get(), LogVersion) ||
      !writePod(F.get(), RecordBytes) || !writePod(F.get(), EndTime))
    return false;
  std::uint8_t CompleteByte = Complete;
  if (!writePod(F.get(), CompleteByte) || !writePod(F.get(), DroppedChunks) ||
      !writePod(F.get(), DroppedBytes) || !writePod(F.get(), Retries) ||
      !writePod(F.get(), LastErrno))
    return false;
  if (!writePod(F.get(), SampleRate) || !writePod(F.get(), SampleSeed))
    return false;
  std::uint8_t CompressedByte = Compressed;
  if (!writePod(F.get(), CompressedByte))
    return false;

  std::uint64_t NumSites = Sites.size();
  if (!writePod(F.get(), NumSites))
    return false;
  for (SiteId S = 0; S != NumSites; ++S) {
    const auto &Chain = Sites.chain(S);
    std::uint32_t Len = static_cast<std::uint32_t>(Chain.size());
    if (!writePod(F.get(), Len))
      return false;
    for (const SiteFrame &Fr : Chain) {
      DiskFrame D{Fr.Method.Index, Fr.Pc, Fr.Line};
      if (!writePod(F.get(), D))
        return false;
    }
  }

  std::uint64_t NumRecords = Records.size();
  if (!writePod(F.get(), NumRecords))
    return false;
  for (const ObjectRecord &R : Records) {
    DiskRecord D;
    D.Id = R.Id;
    D.ClassIndex = R.Class.Index;
    D.AKind = static_cast<std::uint8_t>(R.AKind);
    D.IsArray = R.IsArray;
    D.UsedOutsideInit = R.UsedOutsideInit;
    D.SurvivedToEnd = R.SurvivedToEnd;
    D.Bytes = R.Bytes;
    D.UseCount = R.UseCount;
    D.AllocTime = R.AllocTime;
    D.FirstUseTime = R.FirstUseTime;
    D.LastUseTime = R.LastUseTime;
    D.CollectTime = R.CollectTime;
    D.AllocSite = R.AllocSite;
    D.LastUseSite = R.LastUseSite;
    if (!writePod(F.get(), D))
      return false;
  }

  std::uint64_t NumSamples = GCSamples.size();
  if (!writePod(F.get(), NumSamples))
    return false;
  for (const GCSample &S : GCSamples)
    if (!writePod(F.get(), S))
      return false;
  return true;
}

bool ProfileLog::readFile(const std::string &Path, ProfileLog &Out) {
  FilePtr F(std::fopen(Path.c_str(), "rb"));
  if (!F)
    return false;

  // Total file size bounds every element count below: a corrupt count
  // fails validation instead of driving a huge reserve() or a long
  // garbage-read loop.
  if (std::fseek(F.get(), 0, SEEK_END) != 0)
    return false;
  long EndPos = std::ftell(F.get());
  if (EndPos < 0 || std::fseek(F.get(), 0, SEEK_SET) != 0)
    return false;
  std::uint64_t FileSize = static_cast<std::uint64_t>(EndPos);
  auto Remaining = [&] {
    long Pos = std::ftell(F.get());
    return Pos < 0 ? std::uint64_t{0}
                   : FileSize - static_cast<std::uint64_t>(Pos);
  };

  std::uint64_t Magic = 0;
  std::uint32_t Version = 0;
  std::uint32_t RecordBytes = 0;
  if (!readPod(F.get(), Magic) || Magic != LogMagic)
    return false;
  if (!readPod(F.get(), Version) || Version != LogVersion)
    return false;
  if (!readPod(F.get(), RecordBytes) || RecordBytes != sizeof(DiskRecord))
    return false;
  if (!readPod(F.get(), Out.EndTime))
    return false;
  std::uint8_t CompleteByte = 1;
  if (!readPod(F.get(), CompleteByte) || CompleteByte > 1 ||
      !readPod(F.get(), Out.DroppedChunks) ||
      !readPod(F.get(), Out.DroppedBytes) || !readPod(F.get(), Out.Retries) ||
      !readPod(F.get(), Out.LastErrno))
    return false;
  Out.Complete = CompleteByte;
  // A complete log must not claim drops (and vice versa).
  if (Out.Complete != (Out.DroppedChunks == 0 && Out.DroppedBytes == 0))
    return false;
  if (!readPod(F.get(), Out.SampleRate) || !readPod(F.get(), Out.SampleSeed))
    return false;
  std::uint8_t CompressedByte = 0;
  if (!readPod(F.get(), CompressedByte) || CompressedByte > 1)
    return false;
  Out.Compressed = CompressedByte;

  std::uint64_t NumSites = 0;
  if (!readPod(F.get(), NumSites))
    return false;
  // Each site needs at least its 4-byte frame count.
  if (NumSites > Remaining() / sizeof(std::uint32_t))
    return false;
  for (std::uint64_t S = 0; S != NumSites; ++S) {
    std::uint32_t Len = 0;
    if (!readPod(F.get(), Len) || Len > 1024 ||
        Len > Remaining() / sizeof(DiskFrame))
      return false;
    std::vector<SiteFrame> Chain;
    Chain.reserve(Len);
    for (std::uint32_t I = 0; I != Len; ++I) {
      DiskFrame D;
      if (!readPod(F.get(), D))
        return false;
      Chain.push_back({ir::MethodId(D.MethodIndex), D.Pc, D.Line});
    }
    // Sites are written in id order, so re-interning preserves ids.
    SiteId Got = Out.Sites.internFrames(std::move(Chain));
    if (Got != S)
      return false;
  }

  std::uint64_t NumRecords = 0;
  if (!readPod(F.get(), NumRecords))
    return false;
  if (NumRecords > Remaining() / sizeof(DiskRecord))
    return false;
  Out.Records.reserve(NumRecords);
  for (std::uint64_t I = 0; I != NumRecords; ++I) {
    DiskRecord D;
    if (!readPod(F.get(), D))
      return false;
    ObjectRecord R;
    R.Id = D.Id;
    R.Class = ir::ClassId(D.ClassIndex);
    R.AKind = static_cast<ir::ArrayKind>(D.AKind);
    R.IsArray = D.IsArray;
    R.UsedOutsideInit = D.UsedOutsideInit;
    R.SurvivedToEnd = D.SurvivedToEnd;
    R.Bytes = D.Bytes;
    R.UseCount = D.UseCount;
    R.AllocTime = D.AllocTime;
    R.FirstUseTime = D.FirstUseTime;
    R.LastUseTime = D.LastUseTime;
    R.CollectTime = D.CollectTime;
    R.AllocSite = D.AllocSite;
    R.LastUseSite = D.LastUseSite;
    Out.Records.push_back(R);
  }

  std::uint64_t NumSamples = 0;
  if (!readPod(F.get(), NumSamples))
    return false;
  // The samples are the final section: their size must match the bytes
  // left exactly, catching both truncation and trailing garbage.
  if (NumSamples * sizeof(GCSample) != Remaining())
    return false;
  Out.GCSamples.reserve(NumSamples);
  for (std::uint64_t I = 0; I != NumSamples; ++I) {
    GCSample S;
    if (!readPod(F.get(), S))
      return false;
    Out.GCSamples.push_back(S);
  }
  return true;
}
