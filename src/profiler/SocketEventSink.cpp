//===- profiler/SocketEventSink.cpp ---------------------------------------===//

#include "profiler/SocketEventSink.h"

#include "daemon/Protocol.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace jdrag;
using namespace jdrag::profiler;

namespace {
/// poll() slice while waiting out a full socket buffer; short enough
/// that SendTimeoutMs is honored with ~100 ms granularity.
constexpr int PollSliceMs = 100;
} // namespace

SocketEventSink::SocketEventSink(Options O) : Opt(std::move(O)) {
  if (!Opt.Pid)
    Opt.Pid = static_cast<std::uint64_t>(::getpid());
  if (Opt.Compress && Opt.Format >= WireFormat::V6)
    Comp = std::make_unique<ChunkCompressor>();
}

SocketEventSink::~SocketEventSink() { finish(); }

long SocketEventSink::rawSend(const void *Data, std::size_t Size) {
  ++RawSends;
  if (!FaultReset && TotalRawSent >= Opt.Fault.ResetAfterBytes) {
    // One-shot injected connection reset; disarms so the reconnected
    // session proceeds (the daemon is still alive in this scenario).
    FaultReset = true;
    errno = ECONNRESET;
    return -1;
  }
  std::size_t N = Size;
  if (Opt.Fault.ShortSendEvery && Opt.Fault.ShortSendBytes &&
      RawSends % Opt.Fault.ShortSendEvery == 0)
    N = std::min(N, Opt.Fault.ShortSendBytes);
  long R = ::send(Fd, Data, N, MSG_NOSIGNAL);
  if (R > 0)
    TotalRawSent += static_cast<std::uint64_t>(R);
  return R;
}

bool SocketEventSink::dialOnce() {
  daemon::Address A;
  std::string Err;
  if (!daemon::parseAddress(Opt.Connect, A, &Err)) {
    LastErr = EINVAL;
    return false;
  }
  int E = 0;
  int NewFd = daemon::connectTo(A, Opt.ConnectTimeoutMs, &E);
  if (NewFd < 0) {
    LastErr = E;
    return false;
  }
  // The socket runs non-blocking under both policies; sendLoop supplies
  // the waiting (Block) or the shed decision (Drop).
  daemon::setNonBlocking(NewFd, true);
  Fd = NewFd;
  daemon::HelloInfo Hello;
  Hello.Pid = Opt.Pid;
  Hello.Format = Opt.Format;
  Hello.Name = Opt.Name;
  Hello.SampleBytes = Opt.Sampling.SampleBytes;
  Hello.SampleSeed = Opt.Sampling.SampleSeed;
  std::vector<std::byte> Msg = daemon::encodeHello(Hello);
  bool First = false;
  if (!sendLoop(Msg.data(), Msg.size(), First)) {
    teardown();
    return false;
  }
  ++Sessions;
  SessionSeq = 0;
  return true;
}

bool SocketEventSink::ensureConnected() {
  if (Fd >= 0)
    return true;
  if (ConnectGaveUp)
    return false;
  for (std::uint32_t Attempt = 0;; ++Attempt) {
    if (dialOnce())
      return true;
    if (Attempt >= Opt.Backoff.MaxRetries)
      break;
    ++Retries;
    std::this_thread::sleep_for(
        std::chrono::microseconds(backoffDelayMicros(
            Opt.Backoff, Attempt,
            static_cast<std::uint32_t>(Opt.Pid) ^ Attempt)));
  }
  // Budget exhausted: stay degraded for the rest of the run. Dialing a
  // dead daemon on every chunk would stall the VM over and over -- the
  // spool is durable and `jdrag send` forwards it once the daemon is
  // back.
  ConnectGaveUp = true;
  return false;
}

void SocketEventSink::teardown() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
}

/// Drains \p Size bytes into the socket. On return false the connection
/// is unusable (LastErr says why) -- except the shed case: when
/// \p FirstByteSent stays false and the policy is Drop, a full kernel
/// buffer before the first byte yields false with errno EAGAIN and the
/// caller sheds the chunk instead of tearing down.
bool SocketEventSink::sendLoop(const std::byte *Data, std::size_t Size,
                               bool &FirstByteSent) {
  std::size_t Off = 0;
  int WaitedMs = 0;
  while (Off < Size) {
    errno = 0;
    long N = rawSend(Data + Off, Size - Off);
    if (N > 0) {
      Off += static_cast<std::size_t>(N);
      FirstByteSent = true;
      continue;
    }
    int E = errno;
    if (N == 0)
      E = EIO;
    if (E == EINTR)
      continue;
    if (E == EAGAIN || E == EWOULDBLOCK) {
      if (!FirstByteSent && Opt.Policy == QueueFullPolicy::Drop) {
        errno = EAGAIN;
        return false;
      }
      pollfd P{Fd, POLLOUT, 0};
      int Rc = ::poll(&P, 1, PollSliceMs);
      if (Rc < 0 && errno != EINTR) {
        LastErr = errno;
        return false;
      }
      WaitedMs += PollSliceMs;
      if (Opt.SendTimeoutMs && WaitedMs >= Opt.SendTimeoutMs) {
        // A chunk that cannot drain within the budget means a wedged
        // peer; declare the connection dead rather than trap the VM.
        LastErr = ETIMEDOUT;
        return false;
      }
      continue;
    }
    LastErr = E;
    return false;
  }
  return true;
}

void SocketEventSink::accountDrop(std::size_t Size) {
  ++DroppedChunks;
  DroppedBytes += Size;
}

void SocketEventSink::enterSpoolMode() {
  if (SpoolActive || SpoolFailed)
    return;
  if (Opt.SpoolPath.empty()) {
    SpoolFailed = true;
    return;
  }
  Spool = std::make_unique<FileEventSink>();
  FileEventSink::Options FO;
  FO.Backoff = Opt.Backoff;
  FO.Format = Opt.Format;
  FO.Sampling = Opt.Sampling;
  if (!Spool->open(Opt.SpoolPath, FO)) {
    LastErr = Spool->lastErrno() ? Spool->lastErrno() : EIO;
    Spool.reset();
    SpoolFailed = true;
    return;
  }
  SpoolActive = true;
  ++Failovers;
}

bool SocketEventSink::spoolChunk(const std::byte *Data, std::size_t Size) {
  enterSpoolMode();
  ChunkHeader H;
  std::memcpy(&H, Data, sizeof(H));
  if (!SpoolActive) {
    // No spool to degrade to: a data chunk is real loss, a footer is
    // merely swallowed (footerless streams are valid).
    if (H.Magic == FooterMagic)
      ++FootersSwallowed;
    else
      accountDrop(Size);
    return true;
  }
  if (H.Magic == FooterMagic) {
    // The footer indexes the whole stream; writing it to a spool that
    // holds only the tail (or renumbered chunks) would lie. Footerless
    // v4 is valid -- readers rebuild the index.
    if (!SpoolIdentity) {
      ++FootersSwallowed;
      return true;
    }
    if (!Spool->writeChunk(Data, Size)) {
      LastErr = Spool->lastErrno();
      SpoolIdentity = false;
      accountDrop(Size);
      return true;
    }
    SpooledBytes += Size;
    ++SpooledChunks;
    return true;
  }
  if (H.Seq != SpoolSeq)
    SpoolIdentity = false;
  Scratch.assign(Data, Data + Size);
  H.Seq = SpoolSeq;
  std::memcpy(Scratch.data(), &H, sizeof(H));
  if (!Spool->writeChunk(Scratch.data(), Scratch.size())) {
    LastErr = Spool->lastErrno();
    // The spool now misses a chunk the stream contains; a later footer
    // would index bytes the spool never received.
    SpoolIdentity = false;
    accountDrop(Size);
    return true;
  }
  ++SpoolSeq;
  ++SpooledChunks;
  SpooledBytes += Size;
  return true;
}

bool SocketEventSink::writeChunk(const std::byte *Data, std::size_t Size) {
  // Compress up front -- before the session/spool fork -- so every
  // destination carries the same v6 frames: the daemon records them
  // verbatim and a degraded spool holds identical bytes. Like the
  // file sink, this runs on AsyncEventSink's writer thread when this
  // sink sits behind one, off the VM's critical path.
  if (Comp && Size >= sizeof(ChunkHeader)) {
    std::span<const std::byte> T = Comp->transform(Data, Size);
    if (T.empty()) {
      // Structurally invalid frame from the producer: shed it like a
      // runt (never a real EventBuffer frame).
      SessionIdentity = false;
      SpoolIdentity = false;
      accountDrop(Size);
      return true;
    }
    Data = T.data();
    Size = T.size();
  }
  if (Size < sizeof(ChunkHeader)) {
    // A runt frame is shed; whichever destination carries this stream
    // is now missing a flushed chunk, so neither may claim the footer.
    SessionIdentity = false;
    SpoolIdentity = false;
    accountDrop(Size);
    return true;
  }
  if (ConnectGaveUp)
    return spoolChunk(Data, Size);

  ChunkHeader H;
  std::memcpy(&H, Data, sizeof(H));
  bool IsFooter = H.Magic == FooterMagic;
  if (IsFooter && !SessionIdentity) {
    ++FootersSwallowed;
    return true;
  }
  if (!IsFooter && H.Seq != SessionSeq)
    SessionIdentity = false;

  // One session message: outer frame + the chunk verbatim, with the
  // sequence renumbered into this session's stream. Footer frames go
  // verbatim -- their Seq field is the entry count, not a sequence.
  daemon::MsgHeader MH;
  MH.Type = static_cast<std::uint32_t>(daemon::MsgType::Chunk);
  MH.Length = static_cast<std::uint32_t>(Size);
  Scratch.resize(sizeof(MH) + Size);
  std::memcpy(Scratch.data(), &MH, sizeof(MH));
  std::memcpy(Scratch.data() + sizeof(MH), Data, Size);
  if (!IsFooter) {
    ChunkHeader Out = H;
    Out.Seq = SessionSeq;
    std::memcpy(Scratch.data() + sizeof(daemon::MsgHeader), &Out,
                sizeof(Out));
  }

  for (std::uint32_t Attempt = 0;; ++Attempt) {
    if (!ensureConnected())
      return spoolChunk(Data, Size);
    bool First = false;
    if (sendLoop(Scratch.data(), Scratch.size(), First)) {
      BytesSent += Size;
      if (!IsFooter) {
        ++SessionSeq;
        ++ChunksSent;
        if (Opt.OnChunkSent)
          Opt.OnChunkSent(ChunksSent);
      }
      return true;
    }
    if (!First && errno == EAGAIN && Opt.Policy == QueueFullPolicy::Drop) {
      // Kernel buffer full before the first byte: shed this chunk, keep
      // the connection (the daemon is slow, not gone). The session
      // stream now has a gap, so no later footer may be forwarded to it.
      if (IsFooter)
        ++FootersSwallowed;
      else {
        SessionIdentity = false;
        accountDrop(Size);
      }
      return true;
    }
    // Connection failure (possibly mid-message: the daemon discards the
    // partial message, so the whole chunk is ours to resend). Reconnect
    // under the backoff budget and resend from the top; a new session
    // restarts at sequence 0.
    teardown();
    if (IsFooter) {
      // A fresh session will hold none of the chunks the footer
      // indexes; resending it there would lie. Swallow it (not loss).
      ++FootersSwallowed;
      return true;
    }
    // The resend lands in a new session starting at sequence 0; unless
    // this was the stream's first chunk, the daemon-side recording is
    // now a renumbered tail, not the whole stream.
    if (H.Seq != 0)
      SessionIdentity = false;
    if (Attempt >= Opt.Backoff.MaxRetries) {
      ConnectGaveUp = true;
      return spoolChunk(Data, Size);
    }
    ++Retries;
    std::this_thread::sleep_for(
        std::chrono::microseconds(backoffDelayMicros(
            Opt.Backoff, Attempt,
            static_cast<std::uint32_t>(Opt.Pid) ^ Attempt)));
    // Renumber for the session the retry will open (Seq restarts at 0
    // there; ensureConnected resets SessionSeq on success).
    ChunkHeader Out = H;
    Out.Seq = 0;
    std::memcpy(Scratch.data() + sizeof(daemon::MsgHeader), &Out,
                sizeof(Out));
  }
}

bool SocketEventSink::connectNow() {
  return ensureConnected();
}

bool SocketEventSink::finish() {
  if (Finished)
    return DroppedChunks == 0;
  Finished = true;
  if (Fd >= 0) {
    daemon::ByeInfo Bye;
    Bye.ChunksSent = ChunksSent;
    Bye.BytesSent = BytesSent;
    Bye.ChunksDropped = DroppedChunks;
    Bye.BytesDropped = DroppedBytes;
    std::vector<std::byte> Msg = daemon::encodeBye(Bye);
    bool First = false;
    sendLoop(Msg.data(), Msg.size(), First); // best effort
    teardown();
  }
  bool SpoolOk = true;
  if (Spool) {
    SpoolOk = Spool->finish();
    if (!SpoolOk && Spool->lastErrno())
      LastErr = Spool->lastErrno();
  }
  return DroppedChunks == 0 && SpoolOk;
}
