//===- profiler/SiteTable.h - Nested-site interning -------------*- C++ -*-===//
//
// Part of jdrag (PLDI 2001 "Heap Profiling for Space-Efficient Java").
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper records each object's *nested allocation site* -- "the call
/// chain leading to the allocation" -- and nested last-use site, with a
/// configurable nesting level trading accuracy for speed (section 2.1.1).
/// SiteTable interns such chains into dense SiteIds so that per-object
/// trailers and log records carry one word each.
///
//===----------------------------------------------------------------------===//

#ifndef JDRAG_PROFILER_SITETABLE_H
#define JDRAG_PROFILER_SITETABLE_H

#include "ir/Program.h"
#include "vm/Events.h"

#include <span>
#include <string>
#include <unordered_map>
#include <vector>

namespace jdrag::profiler {

/// Dense id for an interned (possibly nested) site.
using SiteId = std::uint32_t;
inline constexpr SiteId InvalidSite = ~static_cast<SiteId>(0);

/// One frame of an interned chain.
struct SiteFrame {
  ir::MethodId Method;
  std::uint32_t Pc = 0;
  std::uint32_t Line = 0;

  friend bool operator==(const SiteFrame &A, const SiteFrame &B) {
    return A.Method == B.Method && A.Pc == B.Pc && A.Line == B.Line;
  }
};

/// Interns call chains. Chains are innermost-frame-first; the innermost
/// frame of an allocation chain is the `new` bytecode itself (the
/// *allocation site*); outer frames give the nesting context.
class SiteTable {
public:
  SiteTable();

  /// Interns the innermost min(Chain.size(), MaxDepth) frames of
  /// \p Chain. An empty chain (VM-internal allocation) gets a dedicated
  /// "<vm>" site.
  SiteId intern(std::span<const vm::CallFrameRef> Chain,
                std::uint32_t MaxDepth);

  /// Interns an explicit frame list (used by the log reader).
  SiteId internFrames(std::vector<SiteFrame> Frames);

  /// Unknown ids (InvalidSite, or a site lost to a truncated or
  /// tail-replayed recording) resolve to an empty chain rather than
  /// throwing: logs whose records reference unresolvable sites are a
  /// legitimate salvage outcome, and every analysis must survive them.
  const std::vector<SiteFrame> &chain(SiteId Id) const {
    static const std::vector<SiteFrame> Empty;
    return Id < Chains.size() ? Chains[Id] : Empty;
  }

  /// The innermost frame, or nullptr for the "<vm>" site and for
  /// unknown ids.
  const SiteFrame *innermost(SiteId Id) const {
    if (Id >= Chains.size())
      return nullptr;
    const auto &C = Chains[Id];
    return C.empty() ? nullptr : &C.front();
  }

  /// "Cls.m:12 <- Cls.n:40" (innermost first), or "<vm>".
  std::string describe(const ir::Program &P, SiteId Id) const;

  /// "Cls.m:12" for the innermost frame only (the paper's coarse
  /// "allocation site" partition).
  std::string describeInnermost(const ir::Program &P, SiteId Id) const;

  std::uint32_t size() const {
    return static_cast<std::uint32_t>(Chains.size());
  }

private:
  struct ChainHash {
    std::size_t operator()(const std::vector<SiteFrame> &C) const;
  };

  std::vector<std::vector<SiteFrame>> Chains;
  std::unordered_map<std::vector<SiteFrame>, SiteId, ChainHash> Map;
};

} // namespace jdrag::profiler

#endif // JDRAG_PROFILER_SITETABLE_H
