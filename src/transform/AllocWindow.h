//===- transform/AllocWindow.h - Removable allocation windows ---*- C++ -*-===//
//
// Part of jdrag (PLDI 2001 "Heap Profiling for Space-Efficient Java").
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Locates the self-contained instruction window that computes one
/// allocation and its single consuming store:
///
///     [Begin .. ]  pushes of the store's other operands (receiver,
///                  array, index) and constructor arguments
///     NewPc        the `new` / `newarray`
///     CtorPc       the invokespecial of the constructor (objects only)
///     StorePc      astore / putfield / putstatic / aastore / pop
///
/// The window is *removable* when every instruction inside is
/// side-effect-free and non-trapping, the stack depth never dips below
/// the post-store depth, no branch enters the interior, and the new
/// object has exactly the constructor call and the store as consumers.
/// Dead code removal nops the whole window; lazy allocation nops the
/// eager-initialization window found in a constructor.
///
//===----------------------------------------------------------------------===//

#ifndef JDRAG_TRANSFORM_ALLOCWINDOW_H
#define JDRAG_TRANSFORM_ALLOCWINDOW_H

#include "sa/StackFlow.h"

#include <optional>

namespace jdrag::transform {

/// A removable allocation window [Begin, StorePc].
struct AllocWindow {
  std::uint32_t Begin = 0;
  std::uint32_t NewPc = 0;
  std::uint32_t CtorPc = ~0u; ///< ~0 when the allocation is an array
  std::uint32_t StorePc = 0;

  bool hasCtor() const { return CtorPc != ~0u; }
};

/// Attempts to match the removable window of the allocation at \p NewPc.
/// Returns nullopt when the code shape is not removable.
std::optional<AllocWindow> matchAllocWindow(const ir::Program &P,
                                            const ir::MethodInfo &M,
                                            const sa::StackFlow &SF,
                                            std::uint32_t NewPc);

} // namespace jdrag::transform

#endif // JDRAG_TRANSFORM_ALLOCWINDOW_H
