//===- transform/LazyAllocation.h - Allocate at first use -------*- C++ -*-===//
//
// Part of jdrag (PLDI 2001 "Heap Profiling for Space-Efficient Java").
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's third strategy (section 3.3.3): "we eliminate the original
/// allocation of the object and the variable that would have referenced
/// the object remains null ... at every possible first use of the object,
/// there is a test to check whether the variable is still null. If so,
/// the object is allocated."
///
/// Implementation: for an instance field F eagerly initialized in its
/// owner's constructor with `new C(); ...` (a state-independent
/// constructor -- no parameters, reads no program state, throws nothing
/// catchable), the pass
///   1. nops the eager-initialization window out of the constructor, and
///   2. synthesizes a private accessor `F$lazy()` that null-checks,
///      allocates on demand and returns the field, and
///   3. rewrites every `getfield F` in the program into a call of the
///      accessor (the "every possible first use" guards; guards at reads
///      dominated by another guarded read could be elided with the
///      dominator tree -- the PRE-style minimal code insertion the paper
///      sketches in section 5.1).
///
//===----------------------------------------------------------------------===//

#ifndef JDRAG_TRANSFORM_LAZYALLOCATION_H
#define JDRAG_TRANSFORM_LAZYALLOCATION_H

#include "transform/DeadCodeRemoval.h" // PassContext

#include <string>
#include <vector>

namespace jdrag::transform {

/// Result of one lazified field.
struct LazifiedField {
  ir::FieldId Field;
  ir::MethodId Accessor;
  ir::MethodId RemovedFromCtor;
  std::uint32_t GuardedReads = 0; ///< getfields rewritten to accessor calls
  std::uint32_t ElidedGuards = 0; ///< guards later removed as redundant
};

/// Applies lazy allocation to instance field \p F. Returns true on
/// success; \p Why (if non-null) explains refusals.
bool lazifyField(ir::Program &P, const PassContext &Ctx, ir::FieldId F,
                 std::vector<LazifiedField> &Done, std::string *Why = nullptr);

/// The paper's *minimal code insertion* (section 5.1): "minimal code
/// insertion is achieved by analyzing the places where such code is
/// inserted in a PRE fashion". Within each method, an accessor call
/// whose receiver provably equals the receiver of a *dominating*
/// accessor call of the same field is redundant -- the field is already
/// initialized -- and is downgraded back to a plain getfield. Receiver
/// equality is established for locals that are never reassigned in the
/// method (in particular `this`). Returns the number of guards elided
/// and updates \p L.ElidedGuards.
std::uint32_t elideLazyGuards(ir::Program &P, LazifiedField &L);

} // namespace jdrag::transform

#endif // JDRAG_TRANSFORM_LAZYALLOCATION_H
