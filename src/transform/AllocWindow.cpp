//===- transform/AllocWindow.cpp ------------------------------------------===//

#include "transform/AllocWindow.h"

#include <set>

using namespace jdrag;
using namespace jdrag::ir;
using namespace jdrag::sa;
using namespace jdrag::transform;

namespace {

/// Stack slots consumed by \p I.
std::uint32_t popCount(const Program &P, const Instruction &I) {
  switch (I.Op) {
  case Opcode::IConst:
  case Opcode::DConst:
  case Opcode::AConstNull:
  case Opcode::Nop:
  case Opcode::ILoad:
  case Opcode::DLoad:
  case Opcode::ALoad:
  case Opcode::GetStatic:
  case Opcode::New:
  case Opcode::Goto:
    return 0;
  case Opcode::Dup: // reads without consuming
    return 0;
  case Opcode::Swap:
    return 0;
  case Opcode::Pop:
  case Opcode::IStore:
  case Opcode::DStore:
  case Opcode::AStore:
  case Opcode::INeg:
  case Opcode::DNeg:
  case Opcode::I2D:
  case Opcode::D2I:
  case Opcode::IfEqZ:
  case Opcode::IfNeZ:
  case Opcode::IfLtZ:
  case Opcode::IfLeZ:
  case Opcode::IfGtZ:
  case Opcode::IfGeZ:
  case Opcode::IfNull:
  case Opcode::IfNonNull:
  case Opcode::GetField:
  case Opcode::PutStatic:
  case Opcode::NewArray:
  case Opcode::ArrayLength:
  case Opcode::IReturn:
  case Opcode::DReturn:
  case Opcode::AReturn:
  case Opcode::Throw:
  case Opcode::MonitorEnter:
  case Opcode::MonitorExit:
    return 1;
  case Opcode::IAdd:
  case Opcode::ISub:
  case Opcode::IMul:
  case Opcode::IDiv:
  case Opcode::IRem:
  case Opcode::IAnd:
  case Opcode::IOr:
  case Opcode::IXor:
  case Opcode::IShl:
  case Opcode::IShr:
  case Opcode::DAdd:
  case Opcode::DSub:
  case Opcode::DMul:
  case Opcode::DDiv:
  case Opcode::DCmp:
  case Opcode::IfICmpEq:
  case Opcode::IfICmpNe:
  case Opcode::IfICmpLt:
  case Opcode::IfICmpLe:
  case Opcode::IfICmpGt:
  case Opcode::IfICmpGe:
  case Opcode::IfACmpEq:
  case Opcode::IfACmpNe:
  case Opcode::PutField:
  case Opcode::AALoad:
  case Opcode::IALoad:
  case Opcode::CALoad:
  case Opcode::DALoad:
    return 2;
  case Opcode::AAStore:
  case Opcode::IAStore:
  case Opcode::CAStore:
  case Opcode::DAStore:
    return 3;
  case Opcode::Return:
    return 0;
  case Opcode::InvokeVirtual:
  case Opcode::InvokeSpecial:
  case Opcode::InvokeStatic: {
    const MethodInfo &Callee = P.Methods[static_cast<std::uint32_t>(I.A)];
    return static_cast<std::uint32_t>(Callee.Params.size()) +
           (Callee.IsStatic ? 0u : 1u);
  }
  }
  return 0;
}

/// Side-effect-free, non-trapping instructions that may appear inside a
/// removable window (besides the allocation, its ctor and its store).
bool isWindowTransparent(Opcode Op) {
  switch (Op) {
  case Opcode::IConst:
  case Opcode::DConst:
  case Opcode::AConstNull:
  case Opcode::Nop:
  case Opcode::ILoad:
  case Opcode::DLoad:
  case Opcode::ALoad:
  case Opcode::GetStatic:
  case Opcode::Dup:
  case Opcode::Swap:
  case Opcode::IAdd:
  case Opcode::ISub:
  case Opcode::IMul:
  case Opcode::IAnd:
  case Opcode::IOr:
  case Opcode::IXor:
  case Opcode::IShl:
  case Opcode::IShr:
  case Opcode::INeg:
  case Opcode::DAdd:
  case Opcode::DSub:
  case Opcode::DMul:
  case Opcode::DDiv:
  case Opcode::DNeg:
  case Opcode::DCmp:
  case Opcode::I2D:
  case Opcode::D2I:
    return true;
  default:
    return false; // idiv/irem can trap; everything else has effects
  }
}

/// True iff the single origin of \p Cell is New at \p NewPc.
bool isExactlyNewAt(const StackCell &Cell, std::uint32_t NewPc) {
  return Cell.isSingle() &&
         Cell.single().O == StackValue::Origin::New &&
         Cell.single().DefPc == NewPc;
}

} // namespace

std::optional<AllocWindow>
jdrag::transform::matchAllocWindow(const Program &P, const MethodInfo &M,
                                   const StackFlow &SF, std::uint32_t NewPc) {
  std::uint32_t N = static_cast<std::uint32_t>(M.Code.size());
  if (NewPc >= N || !SF.isReachable(NewPc))
    return std::nullopt;
  const Opcode NewOp = M.Code[NewPc].Op;
  if (NewOp != Opcode::New && NewOp != Opcode::NewArray)
    return std::nullopt;

  // Classify every consumer of the allocated value.
  AllocWindow W;
  W.NewPc = NewPc;
  bool HaveStore = false;
  for (std::uint32_t Pc = 0; Pc != N; ++Pc) {
    if (!SF.isReachable(Pc))
      continue;
    const Instruction &I = M.Code[Pc];
    std::uint32_t Pops = popCount(P, I);
    bool Consumes = false;
    bool Exact = true;
    for (std::uint32_t D = 0; D != Pops; ++D) {
      StackCell Cell = SF.operand(Pc, D);
      if (Cell.mayBeNewAt(NewPc)) {
        Consumes = true;
        if (!isExactlyNewAt(Cell, NewPc))
          Exact = false;
      }
    }
    if (!Consumes)
      continue;
    if (!Exact)
      return std::nullopt; // value merged with others: not removable

    if (I.Op == Opcode::InvokeSpecial) {
      const MethodInfo &Callee = P.Methods[static_cast<std::uint32_t>(I.A)];
      StackCell Recv =
          SF.operand(Pc, static_cast<std::uint32_t>(Callee.Params.size()));
      if (Callee.IsConstructor && isExactlyNewAt(Recv, NewPc) &&
          !W.hasCtor()) {
        // Ensure the object is only the receiver, not also an argument.
        bool AlsoArg = false;
        for (std::uint32_t D = 0,
                           E = static_cast<std::uint32_t>(
                               Callee.Params.size());
             D != E; ++D)
          if (SF.operand(Pc, D).mayBeNewAt(NewPc))
            AlsoArg = true;
        if (!AlsoArg) {
          W.CtorPc = Pc;
          continue;
        }
      }
      return std::nullopt;
    }
    if (I.Op == Opcode::AStore || I.Op == Opcode::PutField ||
        I.Op == Opcode::PutStatic || I.Op == Opcode::AAStore ||
        I.Op == Opcode::Pop) {
      // The object must be the stored value (operand 0), not the
      // receiver/array of the store.
      if (!isExactlyNewAt(SF.operand(Pc, 0), NewPc))
        return std::nullopt;
      for (std::uint32_t D = 1; D != Pops; ++D)
        if (SF.operand(Pc, D).mayBeNewAt(NewPc))
          return std::nullopt;
      if (HaveStore)
        return std::nullopt; // more than one store
      HaveStore = true;
      W.StorePc = Pc;
      continue;
    }
    return std::nullopt; // any other consumer (use, arg, return, throw)
  }
  if (!HaveStore)
    return std::nullopt;
  if (NewOp == Opcode::New && !W.hasCtor())
    return std::nullopt; // unconstructed object (should not happen)
  if (W.StorePc < NewPc || (W.hasCtor() && (W.CtorPc < NewPc ||
                                            W.CtorPc > W.StorePc)))
    return std::nullopt;

  // Target depth after the store.
  std::uint32_t DepthStore =
      static_cast<std::uint32_t>(SF.stackBefore(W.StorePc).size());
  std::uint32_t Pops = popCount(P, M.Code[W.StorePc]);
  if (DepthStore < Pops)
    return std::nullopt;
  std::uint32_t DAfter = DepthStore - Pops;

  // Extend the window backwards until the entry depth matches.
  std::uint32_t Begin = NewPc;
  while (SF.stackBefore(Begin).size() > DAfter) {
    if (Begin == 0)
      return std::nullopt;
    --Begin;
  }
  if (SF.stackBefore(Begin).size() != DAfter)
    return std::nullopt;

  // Validate the window contents.
  std::set<std::uint32_t> InboundTargets;
  for (const Instruction &I : M.Code)
    if (isBranch(I.Op))
      InboundTargets.insert(static_cast<std::uint32_t>(I.A));
  for (const ExceptionHandler &H : M.Handlers) {
    InboundTargets.insert(H.Start);
    InboundTargets.insert(H.End);
    InboundTargets.insert(H.Target);
  }

  for (std::uint32_t Pc = Begin; Pc <= W.StorePc; ++Pc) {
    if (!SF.isReachable(Pc))
      return std::nullopt;
    if (Pc > Begin && InboundTargets.count(Pc))
      return std::nullopt; // control enters the interior
    if (Pc > Begin && SF.stackBefore(Pc).size() < DAfter)
      return std::nullopt; // window touches outer operands
    if (Pc == NewPc || Pc == W.StorePc || (W.hasCtor() && Pc == W.CtorPc))
      continue;
    if (isWindowTransparent(M.Code[Pc].Op))
      continue;
    // An `aconst_null; astore` pair (inserted by the assigning-null
    // pass) is stack-neutral and its only effect -- nulling a dead local
    // -- may be removed along with the window.
    if (M.Code[Pc].Op == Opcode::AStore && Pc > Begin &&
        M.Code[Pc - 1].Op == Opcode::AConstNull)
      continue;
    return std::nullopt;
  }

  W.Begin = Begin;
  return W;
}
