//===- transform/DeadCodeRemoval.cpp --------------------------------------===//

#include "transform/DeadCodeRemoval.h"

#include "support/Format.h"
#include "transform/AllocWindow.h"
#include "transform/MethodEditor.h"

using namespace jdrag;
using namespace jdrag::ir;
using namespace jdrag::sa;
using namespace jdrag::transform;

bool jdrag::transform::removeDeadAllocation(
    Program &P, const PassContext &Ctx, MethodId M, std::uint32_t NewPc,
    std::vector<RemovedAllocation> &Removed, std::string *Why) {
  auto Refuse = [&](const std::string &Reason) {
    if (Why)
      *Why = Reason;
    return false;
  };

  if (!Ctx.CG.isReachable(M))
    return Refuse("method is unreachable");
  MethodInfo &MI = P.methodOf(M);
  if (NewPc >= MI.Code.size())
    return Refuse("pc out of range");
  Opcode Op = MI.Code[NewPc].Op;
  if (Op != Opcode::New && Op != Opcode::NewArray)
    return Refuse("not an allocation instruction");

  if (!Ctx.VFA.isAllocationDead(M, NewPc))
    return Refuse("object may be used (usage/indirect-usage analysis)");

  StackFlow SF(P, MI);
  std::optional<AllocWindow> W = matchAllocWindow(P, MI, SF, NewPc);
  if (!W)
    return Refuse("allocation is not in removable shape");

  if (W->hasCtor()) {
    MethodId Ctor(static_cast<std::uint32_t>(MI.Code[W->CtorPc].A));
    if (!Ctx.EA.isRemovableCtor(Ctor))
      return Refuse(formatString(
          "constructor %s has observable effects or catchable exceptions",
          P.qualifiedMethodName(Ctor).c_str()));
  } else {
    // Arrays: only OOM is possible; require it to be uncatchable.
    if (Ctx.EA.programHasHandlerFor(P.OOMClass))
      return Refuse("program catches OutOfMemoryError");
  }

  MethodEditor Editor(MI);
  Editor.nopRange(W->Begin, W->StorePc + 1);
  Editor.apply();
  Removed.push_back({M, NewPc, W->Begin, W->StorePc});
  return true;
}

std::vector<RemovedAllocation>
jdrag::transform::removeAllDeadAllocations(Program &P,
                                           const PassContext &Ctx) {
  std::vector<RemovedAllocation> Removed;
  for (const AllocSiteInfo &A : Ctx.VFA.allocations()) {
    if (P.classOf(P.methodOf(A.Method).Owner).IsLibrary)
      continue;
    removeDeadAllocation(P, Ctx, A.Method, A.Pc, Removed);
  }
  return Removed;
}
