//===- transform/LazyAllocation.cpp ---------------------------------------===//

#include "transform/LazyAllocation.h"

#include "sa/CFG.h"
#include "sa/Dominators.h"
#include "sa/StackFlow.h"
#include "support/Format.h"
#include "transform/AllocWindow.h"
#include "transform/MethodEditor.h"

using namespace jdrag;
using namespace jdrag::ir;
using namespace jdrag::sa;
using namespace jdrag::transform;

namespace {

Instruction makeInst(Opcode Op, std::int32_t A = 0, std::uint32_t Line = 0) {
  Instruction I;
  I.Op = Op;
  I.A = A;
  I.Line = Line;
  return I;
}

/// True if some origin of \p Cell is a getfield of \p F.
bool mayBeFieldRead(const StackCell &Cell, FieldId F) {
  if (Cell.Top)
    return true;
  for (const StackValue &V : Cell.Origins)
    if (V.O == StackValue::Origin::Field &&
        static_cast<std::uint32_t>(V.Aux) == F.Index)
      return true;
  return false;
}

} // namespace

bool jdrag::transform::lazifyField(Program &P, const PassContext &Ctx,
                                   FieldId F, std::vector<LazifiedField> &Done,
                                   std::string *Why) {
  auto Refuse = [&](const std::string &Reason) {
    if (Why)
      *Why = Reason;
    return false;
  };

  const FieldInfo &FI = P.fieldOf(F);
  if (FI.IsStatic || FI.Kind != ValueKind::Ref)
    return Refuse("field is not an instance reference");
  ClassId Owner = FI.Owner;

  // Locate the unique eager initialization `this.F = new C(...)` in a
  // constructor of the owner; refuse if F is written anywhere else.
  MethodId InitCtor;
  std::uint32_t NewPc = 0;
  std::optional<AllocWindow> Window;
  for (const MethodInfo &M : P.Methods) {
    if (M.IsNative)
      continue;
    StackFlow SF(P, M);
    for (std::uint32_t Pc = 0, N = static_cast<std::uint32_t>(M.Code.size());
         Pc != N; ++Pc) {
      const Instruction &I = M.Code[Pc];
      if (I.Op != Opcode::PutField ||
          static_cast<std::uint32_t>(I.A) != F.Index)
        continue;
      // Only one store allowed, and it must be the eager init in a ctor.
      if (Window)
        return Refuse("field is written at more than one site");
      if (!M.IsConstructor || M.Owner != Owner)
        return Refuse("field is written outside the owner's constructor");
      StackCell Recv = SF.operand(Pc, 1);
      if (!(Recv.isSingle() &&
            Recv.single().O == StackValue::Origin::Local &&
            Recv.single().Aux == 0))
        return Refuse("eager initialization does not target `this`");
      StackCell Val = SF.operand(Pc, 0);
      if (!(Val.isSingle() && Val.single().O == StackValue::Origin::New))
        return Refuse("eager initialization is not a fresh allocation");
      NewPc = Val.single().DefPc;
      if (M.Code[NewPc].Op != Opcode::New)
        return Refuse("lazy allocation handles object fields only");
      Window = matchAllocWindow(P, M, SF, NewPc);
      if (!Window || Window->StorePc != Pc)
        return Refuse("eager initialization is not in removable shape");
      InitCtor = M.Id;
    }
  }
  if (!Window)
    return Refuse("no eager initialization found");

  MethodInfo &CtorM = P.methodOf(InitCtor);
  ClassId AllocClass(static_cast<std::uint32_t>(CtorM.Code[NewPc].A));
  MethodId ValueCtor(
      static_cast<std::uint32_t>(CtorM.Code[Window->CtorPc].A));
  if (!Ctx.EA.isStateIndependentCtor(ValueCtor))
    return Refuse(formatString(
        "constructor %s is not state-independent (params, reads, or "
        "catchable exceptions)",
        P.qualifiedMethodName(ValueCtor).c_str()));

  // The program must never test the field against null: after the
  // rewrite the accessor cannot return null.
  for (const MethodInfo &M : P.Methods) {
    if (M.IsNative)
      continue;
    StackFlow SF(P, M);
    for (std::uint32_t Pc = 0, N = static_cast<std::uint32_t>(M.Code.size());
         Pc != N; ++Pc) {
      const Instruction &I = M.Code[Pc];
      bool Tests = false;
      if (I.Op == Opcode::IfNull || I.Op == Opcode::IfNonNull)
        Tests = mayBeFieldRead(SF.operand(Pc, 0), F);
      else if (I.Op == Opcode::IfACmpEq || I.Op == Opcode::IfACmpNe)
        Tests = mayBeFieldRead(SF.operand(Pc, 0), F) ||
                mayBeFieldRead(SF.operand(Pc, 1), F);
      if (Tests)
        return Refuse("program tests the field against null");
    }
  }

  // Synthesize the private accessor  ref F$lazy(this).
  MethodInfo Acc;
  Acc.Id = MethodId(static_cast<std::uint32_t>(P.Methods.size()));
  Acc.Owner = Owner;
  Acc.Name = FI.Name + "$lazy";
  Acc.Ret = ValueKind::Ref;
  Acc.Vis = Visibility::Private;
  Acc.LocalKinds = {ValueKind::Ref};
  Acc.DeclLine = FI.DeclLine;
  std::uint32_t L = FI.DeclLine;
  Acc.Code = {
      makeInst(Opcode::ALoad, 0, L),
      makeInst(Opcode::GetField, static_cast<std::int32_t>(F.Index), L),
      makeInst(Opcode::IfNonNull, 8, L),
      makeInst(Opcode::ALoad, 0, L),
      makeInst(Opcode::New, static_cast<std::int32_t>(AllocClass.Index), L),
      makeInst(Opcode::Dup, 0, L),
      makeInst(Opcode::InvokeSpecial,
               static_cast<std::int32_t>(ValueCtor.Index), L),
      makeInst(Opcode::PutField, static_cast<std::int32_t>(F.Index), L),
      makeInst(Opcode::ALoad, 0, L),
      makeInst(Opcode::GetField, static_cast<std::int32_t>(F.Index), L),
      makeInst(Opcode::AReturn, 0, L),
  };
  Acc.MaxStack = 3;
  P.Methods.push_back(Acc);
  P.classOf(Owner).DeclaredMethods.push_back(Acc.Id);

  // Remove the eager initialization.
  {
    MethodEditor Editor(P.methodOf(InitCtor));
    Editor.nopRange(Window->Begin, Window->StorePc + 1);
    Editor.apply();
  }

  // Guard every read: getfield F  ->  invokespecial F$lazy.
  LazifiedField Result;
  Result.Field = F;
  Result.Accessor = Acc.Id;
  Result.RemovedFromCtor = InitCtor;
  for (MethodInfo &M : P.Methods) {
    if (M.IsNative || M.Id == Acc.Id)
      continue;
    MethodEditor Editor(M);
    for (std::uint32_t Pc = 0, N = static_cast<std::uint32_t>(M.Code.size());
         Pc != N; ++Pc)
      if (M.Code[Pc].Op == Opcode::GetField &&
          static_cast<std::uint32_t>(M.Code[Pc].A) == F.Index) {
        Editor.replace(Pc, makeInst(Opcode::InvokeSpecial,
                                    static_cast<std::int32_t>(Acc.Id.Index),
                                    M.Code[Pc].Line));
        ++Result.GuardedReads;
      }
    Editor.apply();
  }

  Done.push_back(Result);
  return true;
}

std::uint32_t jdrag::transform::elideLazyGuards(Program &P,
                                                LazifiedField &L) {
  std::uint32_t Elided = 0;
  for (MethodInfo &M : P.Methods) {
    if (M.IsNative || M.Id == L.Accessor)
      continue;
    // Accessor call sites in this method.
    std::vector<std::uint32_t> Calls;
    for (std::uint32_t Pc = 0, N = static_cast<std::uint32_t>(M.Code.size());
         Pc != N; ++Pc)
      if (M.Code[Pc].Op == Opcode::InvokeSpecial &&
          static_cast<std::uint32_t>(M.Code[Pc].A) == L.Accessor.Index)
        Calls.push_back(Pc);
    if (Calls.size() < 2)
      continue;

    // Locals that are never reassigned: loads of such a slot always
    // yield the same object within one activation.
    std::uint64_t Stable = M.numLocals() <= 64
                               ? (M.numLocals() == 64
                                      ? ~0ull
                                      : (1ull << M.numLocals()) - 1)
                               : 0;
    for (const Instruction &I : M.Code)
      if (I.Op == Opcode::AStore && I.A < 64)
        Stable &= ~(1ull << static_cast<std::uint32_t>(I.A));

    StackFlow SF(P, M);
    sa::CFG G(M);
    sa::DominatorTree DT(G);

    auto StableReceiverSlot = [&](std::uint32_t Pc) -> std::int32_t {
      StackCell Recv = SF.operand(Pc, 0); // accessor takes no params
      if (!Recv.isSingle() ||
          Recv.single().O != StackValue::Origin::Local)
        return -1;
      std::int32_t Slot = Recv.single().Aux;
      if (Slot < 0 || Slot >= 64 || !((Stable >> Slot) & 1))
        return -1;
      return Slot;
    };

    MethodEditor Editor(M);
    for (std::uint32_t B : Calls) {
      std::int32_t SlotB = StableReceiverSlot(B);
      if (SlotB < 0)
        continue;
      for (std::uint32_t A : Calls) {
        if (A == B || StableReceiverSlot(A) != SlotB)
          continue;
        if (!DT.dominatesPc(A, B))
          continue;
        Instruction Plain;
        Plain.Op = Opcode::GetField;
        Plain.A = static_cast<std::int32_t>(L.Field.Index);
        Plain.Line = M.Code[B].Line;
        Editor.replace(B, Plain);
        ++Elided;
        break;
      }
    }
    Editor.apply();
  }
  L.ElidedGuards += Elided;
  return Elided;
}
