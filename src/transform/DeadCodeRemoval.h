//===- transform/DeadCodeRemoval.h - Remove never-used allocs ---*- C++ -*-===//
//
// Part of jdrag (PLDI 2001 "Heap Profiling for Space-Efficient Java").
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's first rewriting strategy (section 3.3.2): "Using a feature
/// of the tool showing objects that are allocated but never used, we find
/// allocation sites where all objects are never-used ... We eliminate the
/// allocation of these objects." Legality: the constructor must be the
/// only code referencing the object, have no influence on the rest of the
/// program, and throw nothing catchable (EffectAnalysis::isRemovableCtor).
///
/// The pass can run in two modes: targeted (remove one allocation site
/// named by the profiler/optimizer) or exhaustive (remove every provably
/// dead allocation, the static usage-analysis of section 5.1).
///
//===----------------------------------------------------------------------===//

#ifndef JDRAG_TRANSFORM_DEADCODEREMOVAL_H
#define JDRAG_TRANSFORM_DEADCODEREMOVAL_H

#include "sa/Effects.h"
#include "sa/ValueFlow.h"

#include <string>
#include <vector>

namespace jdrag::transform {

/// One removal performed.
struct RemovedAllocation {
  ir::MethodId Method;
  std::uint32_t NewPc = 0;
  std::uint32_t WindowBegin = 0;
  std::uint32_t WindowEnd = 0; ///< inclusive store pc
};

/// Context shared by the transformation passes: the analyses are built
/// once per program snapshot and invalidated after mutation.
struct PassContext {
  const ir::Program &P;
  sa::CallGraph CG;
  sa::ValueFlowAnalysis VFA;
  sa::EffectAnalysis EA;

  explicit PassContext(const ir::Program &Prog)
      : P(Prog), CG(Prog), VFA(Prog, CG), EA(Prog, CG) {}
};

/// Attempts to remove the allocation at (\p M, \p NewPc). Returns true
/// and appends to \p Removed on success; \p Why (if non-null) explains
/// refusals.
bool removeDeadAllocation(ir::Program &P, const PassContext &Ctx,
                          ir::MethodId M, std::uint32_t NewPc,
                          std::vector<RemovedAllocation> &Removed,
                          std::string *Why = nullptr);

/// Exhaustive mode: removes every provably-dead allocation in reachable
/// application (non-library) methods. Returns the removals performed.
std::vector<RemovedAllocation> removeAllDeadAllocations(ir::Program &P,
                                                        const PassContext &Ctx);

} // namespace jdrag::transform

#endif // JDRAG_TRANSFORM_DEADCODEREMOVAL_H
