//===- transform/MethodEditor.h - Bytecode editing with remap ---*- C++ -*-===//
//
// Part of jdrag (PLDI 2001 "Heap Profiling for Space-Efficient Java").
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Applies insertions and nop-replacements to a method body, remapping
/// branch targets and exception-handler ranges. All transformation passes
/// edit code through this class so pc bookkeeping lives in one place.
///
/// Branch targets pointing at pc X are redirected to the first
/// instruction inserted before X; this is what the assign-null pass
/// needs (liveness guarantees the nulled slot is dead at X along every
/// path, so executing the inserted store on jump-in edges is safe).
///
//===----------------------------------------------------------------------===//

#ifndef JDRAG_TRANSFORM_METHODEDITOR_H
#define JDRAG_TRANSFORM_METHODEDITOR_H

#include "ir/Program.h"

#include <vector>

namespace jdrag::transform {

/// Collects edits against one method and applies them atomically.
class MethodEditor {
public:
  explicit MethodEditor(ir::MethodInfo &M);

  /// Queues \p Insts to execute immediately before \p Pc (\p Pc may be
  /// Code.size() to append at the end). Inserted instructions must not be
  /// branches; their Line fields are preserved.
  void insertBefore(std::uint32_t Pc, std::vector<ir::Instruction> Insts);

  /// Queues \p Insts to execute immediately after \p Pc (the instruction
  /// at \p Pc must not be a branch or terminator for this to make sense;
  /// asserted).
  void insertAfter(std::uint32_t Pc, std::vector<ir::Instruction> Insts);

  /// Replaces every instruction in [\p Begin, \p End) with Nop.
  void nopRange(std::uint32_t Begin, std::uint32_t End);

  /// Replaces the single instruction at \p Pc (same-length edit; the
  /// replacement may not be a branch unless the original was one with
  /// the same target semantics).
  void replace(std::uint32_t Pc, ir::Instruction NewInst);

  /// True if any edit is queued.
  bool hasEdits() const { return Dirty; }

  /// Rebuilds the method body, fixing branch targets and handlers.
  void apply();

private:
  ir::MethodInfo &M;
  std::vector<std::vector<ir::Instruction>> InsertsBefore; ///< size N+1
  bool Dirty = false;
};

} // namespace jdrag::transform

#endif // JDRAG_TRANSFORM_METHODEDITOR_H
