//===- transform/MethodEditor.cpp -----------------------------------------===//

#include "transform/MethodEditor.h"

#include <cassert>

using namespace jdrag;
using namespace jdrag::ir;
using namespace jdrag::transform;

MethodEditor::MethodEditor(MethodInfo &M) : M(M) {
  InsertsBefore.resize(M.Code.size() + 1);
}

void MethodEditor::insertBefore(std::uint32_t Pc,
                                std::vector<Instruction> Insts) {
  assert(Pc < InsertsBefore.size() && "insertion point out of range");
  for (const Instruction &I : Insts)
    assert(!isBranch(I.Op) && "inserted instructions must not branch");
  auto &Slot = InsertsBefore[Pc];
  Slot.insert(Slot.end(), Insts.begin(), Insts.end());
  Dirty = true;
}

void MethodEditor::insertAfter(std::uint32_t Pc,
                               std::vector<Instruction> Insts) {
  assert(Pc < M.Code.size() && "pc out of range");
  assert(!isBranch(M.Code[Pc].Op) &&
         !isUnconditionalTerminator(M.Code[Pc].Op) &&
         "cannot insert after a control transfer");
  insertBefore(Pc + 1, std::move(Insts));
}

void MethodEditor::nopRange(std::uint32_t Begin, std::uint32_t End) {
  assert(Begin <= End && End <= M.Code.size() && "bad nop range");
  for (std::uint32_t Pc = Begin; Pc != End; ++Pc) {
    Instruction &I = M.Code[Pc];
    I.Op = Opcode::Nop;
    I.A = 0;
    I.IVal = 0;
    I.DVal = 0;
  }
  Dirty = true;
}

void MethodEditor::replace(std::uint32_t Pc, Instruction NewInst) {
  assert(Pc < M.Code.size() && "pc out of range");
  M.Code[Pc] = NewInst;
  Dirty = true;
}

void MethodEditor::apply() {
  if (!Dirty)
    return;
  std::uint32_t N = static_cast<std::uint32_t>(M.Code.size());

  bool AnyInserts = false;
  for (const auto &Slot : InsertsBefore)
    if (!Slot.empty()) {
      AnyInserts = true;
      break;
    }
  if (!AnyInserts)
    return; // nop replacements are in-place; nothing to remap

  // TargetMap[X]: new pc a branch to old X lands on (first inserted
  // instruction before X). InstMap[X]: new pc of the original instruction.
  std::vector<std::uint32_t> TargetMap(N + 1, 0);
  std::vector<Instruction> NewCode;
  NewCode.reserve(N + 16);
  for (std::uint32_t Pc = 0; Pc != N; ++Pc) {
    TargetMap[Pc] = static_cast<std::uint32_t>(NewCode.size());
    for (const Instruction &I : InsertsBefore[Pc])
      NewCode.push_back(I);
    NewCode.push_back(M.Code[Pc]);
  }
  TargetMap[N] = static_cast<std::uint32_t>(NewCode.size());
  for (const Instruction &I : InsertsBefore[N])
    NewCode.push_back(I);

  // Remap branch targets. Inserted instructions are never branches, and
  // original instructions keep their relative order, so scanning NewCode
  // and remapping every branch A is safe.
  for (Instruction &I : NewCode)
    if (isBranch(I.Op))
      I.A = static_cast<std::int32_t>(
          TargetMap[static_cast<std::uint32_t>(I.A)]);

  for (ExceptionHandler &H : M.Handlers) {
    H.Start = TargetMap[H.Start];
    H.End = TargetMap[H.End];
    H.Target = TargetMap[H.Target];
  }

  M.Code = std::move(NewCode);
  InsertsBefore.assign(M.Code.size() + 1, {});
  Dirty = false;
}
