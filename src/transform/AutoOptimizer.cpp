//===- transform/AutoOptimizer.cpp ----------------------------------------===//

#include "transform/AutoOptimizer.h"

#include "sa/StackFlow.h"
#include "support/Format.h"
#include "support/Table.h"

#include <set>

using namespace jdrag;
using namespace jdrag::analysis;
using namespace jdrag::ir;
using namespace jdrag::sa;
using namespace jdrag::transform;
using profiler::SiteFrame;

namespace {

/// Stack depth (from top) of the object operand of a use instruction.
std::int32_t receiverDepth(const Program &P, const Instruction &I) {
  switch (I.Op) {
  case Opcode::GetField:
  case Opcode::MonitorEnter:
  case Opcode::MonitorExit:
  case Opcode::ArrayLength:
  case Opcode::Throw:
    return 0;
  case Opcode::PutField:
  case Opcode::AALoad:
  case Opcode::IALoad:
  case Opcode::CALoad:
  case Opcode::DALoad:
    return 1;
  case Opcode::AAStore:
  case Opcode::IAStore:
  case Opcode::CAStore:
  case Opcode::DAStore:
    return 2;
  case Opcode::InvokeVirtual:
  case Opcode::InvokeSpecial:
    return static_cast<std::int32_t>(
        P.Methods[static_cast<std::uint32_t>(I.A)].Params.size());
  default:
    return -1;
  }
}

std::string visName(const Program &P, FieldId F) {
  return visibilityName(P.fieldOf(F).Vis);
}

/// Candidate allocations for a nested site, innermost first. The paper's
/// anchor walk (section 3.4): besides the allocating instruction itself,
/// each caller frame whose instruction is a constructor invocation names
/// an *object containing the allocated object* -- removing or lazifying
/// the container removes the inner allocation with it (javac's doc
/// string: the char array lives inside the String built in application
/// code).
std::vector<std::pair<MethodId, std::uint32_t>>
allocCandidates(const Program &P, const profiler::SiteTable &Sites,
                profiler::SiteId Site) {
  std::vector<std::pair<MethodId, std::uint32_t>> Out;
  const auto &Chain = Sites.chain(Site);
  for (std::size_t I = 0; I != Chain.size(); ++I) {
    const SiteFrame &Fr = Chain[I];
    const MethodInfo &M = P.methodOf(Fr.Method);
    if (Fr.Pc >= M.Code.size())
      continue;
    const Instruction &Inst = M.Code[Fr.Pc];
    if (I == 0 &&
        (Inst.Op == Opcode::New || Inst.Op == Opcode::NewArray)) {
      Out.push_back({Fr.Method, Fr.Pc});
      continue;
    }
    if (Inst.Op != Opcode::InvokeSpecial)
      continue;
    const MethodInfo &Callee = P.Methods[static_cast<std::uint32_t>(Inst.A)];
    if (!Callee.IsConstructor)
      continue;
    StackFlow SF(P, M);
    StackCell Recv = SF.operand(
        Fr.Pc, static_cast<std::uint32_t>(Callee.Params.size()));
    if (Recv.isSingle() && Recv.single().O == StackValue::Origin::New)
      Out.push_back({Fr.Method, Recv.single().DefPc});
  }
  return Out;
}

/// Applies the assigning-null strategy for one site. All applicable
/// variants are attempted: the dominant last-use receiver suggests where
/// the reference is held, and the allocation's sink locations (from the
/// value-flow analysis) cover holders the last use does not reveal --
/// e.g. jess's popped container elements, whose last use goes through a
/// local copy while the array element keeps the object alive.
bool applyAssignNull(Program &P, const DragReport &Report, const SiteGroup &G,
                     OptimizerDecision &D) {
  bool Any = false;
  std::string Details;
  std::string RefKinds;
  auto Record = [&](const std::string &Kind, const std::string &Detail) {
    Any = true;
    if (!RefKinds.empty())
      RefKinds += " + ";
    RefKinds += Kind;
    if (!Details.empty())
      Details += "; ";
    Details += Detail;
  };

  // Deduplicated worklists of candidate holders.
  std::set<std::uint32_t> LocalMethods; ///< method indices for variant 1
  std::set<std::uint32_t> StaticFields; ///< field indices for variant 2
  std::set<std::uint32_t> ArrayFields;  ///< field indices for variant 3

  // Candidates from the dominant last-use receiver.
  SiteId LastUse = G.dominantLastUseSite();
  const SiteFrame *Use = LastUse != profiler::InvalidSite
                             ? Report.log().Sites.innermost(LastUse)
                             : nullptr;
  if (Use) {
    const MethodInfo &UseM = P.methodOf(Use->Method);
    if (Use->Pc < UseM.Code.size()) {
      std::int32_t Depth = receiverDepth(P, UseM.Code[Use->Pc]);
      if (Depth >= 0) {
        StackFlow SF(P, UseM);
        StackCell Recv =
            SF.operand(Use->Pc, static_cast<std::uint32_t>(Depth));
        if (Recv.isSingle()) {
          switch (Recv.single().O) {
          case StackValue::Origin::Local:
            LocalMethods.insert(Use->Method.Index);
            break;
          case StackValue::Origin::Static:
            StaticFields.insert(static_cast<std::uint32_t>(Recv.single().Aux));
            break;
          case StackValue::Origin::Field: {
            FieldId F(static_cast<std::uint32_t>(Recv.single().Aux));
            if (P.fieldOf(F).Kind == ValueKind::Ref)
              ArrayFields.insert(F.Index);
            break;
          }
          default:
            break;
          }
        }
      }
      // The last-use method is always worth a liveness pass.
      LocalMethods.insert(Use->Method.Index);
    }
    // Walk the last-use chain: an outer frame may hold the reference (or
    // a container of it) in one of its locals -- analyzer's node array
    // lives in main while the last uses happen in analyze().
    for (const SiteFrame &Fr : Report.log().Sites.chain(LastUse))
      LocalMethods.insert(Fr.Method.Index);
  }
  // Same for the allocation chain.
  for (const SiteFrame &Fr : Report.log().Sites.chain(G.Site))
    LocalMethods.insert(Fr.Method.Index);

  // Candidates from the allocation's (transitive) sinks: the holders
  // that keep the dragged objects reachable.
  PassContext Ctx(P);
  const SiteFrame *Inner = Report.log().Sites.innermost(G.Site);
  if (Inner) {
    for (const Location &L : Ctx.VFA.transitiveSinks(Inner->Method,
                                                     Inner->Pc)) {
      switch (L.K) {
      case Location::Kind::Local:
        LocalMethods.insert(L.A);
        break;
      case Location::Kind::StaticField:
        StaticFields.insert(L.A);
        break;
      case Location::Kind::ArrayOfField:
        ArrayFields.insert(L.A);
        break;
      default:
        break;
      }
    }
  }

  // Container-element nulling runs before local nulling: the inserted
  // fix re-loads `this`, which a dead-local null could invalidate.
  for (std::uint32_t FIdx : ArrayFields) {
    FieldId F(FIdx);
    if (P.fieldOf(F).Kind != ValueKind::Ref || P.fieldOf(F).IsStatic)
      continue;
    std::string Why;
    auto Ins = nullifyPoppedArrayElements(P, P.fieldOf(F).Owner, F,
                                          FieldId(), &Why);
    if (!Ins.empty())
      Record(formatString("%s array", visName(P, F).c_str()),
             formatString("nulled popped elements of %s (%zu site(s))",
                          P.qualifiedFieldName(F).c_str(), Ins.size()));
  }

  for (std::uint32_t MIdx : LocalMethods) {
    MethodId M(MIdx);
    if (P.classOf(P.methodOf(M).Owner).IsLibrary)
      continue;
    auto Ins = nullifyDeadLocals(P, M);
    if (!Ins.empty())
      Record("local variable",
             formatString("nulled %zu dead local reference(s) in %s",
                          Ins.size(), P.qualifiedMethodName(M).c_str()));
  }

  for (std::uint32_t FIdx : StaticFields) {
    FieldId F(FIdx);
    PassContext FreshCtx(P); // earlier edits may have changed main
    std::vector<InsertedNull> Ins;
    const MethodInfo &Main = P.methodOf(P.MainMethod);
    std::string Why;
    for (std::uint32_t Pc = 0,
                       N = static_cast<std::uint32_t>(Main.Code.size());
         Pc != N; ++Pc) {
      const Instruction &I = Main.Code[Pc];
      if (isBranch(I.Op) || isUnconditionalTerminator(I.Op))
        continue;
      if (nullifyStaticAfter(P, FreshCtx, F, Pc, Ins, &Why)) {
        Record(formatString("%s static", visName(P, F).c_str()),
               formatString("nulled static %s after main pc %u",
                            P.qualifiedFieldName(F).c_str(), Pc));
        break;
      }
    }
  }


  if (Any) {
    D.RefKind = RefKinds;
    D.Detail = Details;
    return true;
  }
  D.Detail = "no applicable assigning-null variant";
  return false;
}

} // namespace

std::vector<OptimizerDecision>
jdrag::transform::autoOptimize(Program &P, const DragReport &Report,
                               OptimizerOptions Opts) {
  std::vector<OptimizerDecision> Decisions;
  SpaceTime Total = Report.totalDrag();

  // Select and classify the sites to act on.
  std::uint32_t Considered = 0;
  std::vector<const SiteGroup *> Selected;
  for (const SiteGroup &G : Report.groups()) {
    if (Considered >= Opts.TopK)
      break;
    double Fraction = Total > 0 ? G.TotalDrag / Total : 0.0;
    if (Fraction < Opts.MinSiteDragFraction)
      break; // groups are drag-sorted; the rest are smaller
    ++Considered;
    Selected.push_back(&G);
  }

  // Two application phases: dead code removal and lazy allocation first
  // (their edits preserve pcs: nop windows and same-length replacements),
  // assigning null second (it *inserts* instructions, which would
  // invalidate the profile's pcs for decisions applied after it).
  auto Handle = [&](const SiteGroup &G, bool InsertPhase) {
    double Fraction = Total > 0 ? G.TotalDrag / Total : 0.0;
    OptimizerDecision D;
    D.Site = G.Site;
    D.SiteDesc = Report.log().Sites.describe(P, G.Site);
    D.SiteDragMB2 = toMB2(G.TotalDrag);
    D.SiteDragFraction = Fraction;
    D.Pattern =
        classifyPattern(G, Opts.Thresholds, Report.reachableIntegral());
    D.Strategy = strategyFor(D.Pattern);
    bool IsInsertStrategy = D.Strategy == RewriteStrategy::AssignNull ||
                            D.Strategy == RewriteStrategy::None;
    if (IsInsertStrategy != InsertPhase)
      return;

    switch (D.Strategy) {
    case RewriteStrategy::DeadCodeRemoval: {
      if (!Opts.AllowDeadCodeRemoval) {
        D.Detail = "strategy disabled";
        break;
      }
      auto Candidates = allocCandidates(P, Report.log().Sites, G.Site);
      if (Candidates.empty()) {
        D.Detail = "no allocation candidate on the chain";
        break;
      }
      std::string Why = "no candidate matched";
      for (auto [CM, CPc] : Candidates) {
        PassContext Ctx(P);
        std::vector<RemovedAllocation> Removed;
        if (!removeDeadAllocation(P, Ctx, CM, CPc, Removed, &Why))
          continue;
        D.Applied = true;
        const MethodInfo &M = P.methodOf(CM);
        D.RefKind = M.IsConstructor ? "instance field" : "local variable";
        // Refine: report the sink's visibility when the analysis knows
        // it.
        if (const AllocSiteInfo *A = Ctx.VFA.allocAt(CM, CPc))
          for (const Location &L : A->Sinks) {
            if (L.K == Location::Kind::InstanceField)
              D.RefKind = visName(P, FieldId(L.A));
            else if (L.K == Location::Kind::StaticField)
              D.RefKind = formatString("%s static",
                                       visName(P, FieldId(L.A)).c_str());
            else if (L.K == Location::Kind::ArrayOfField)
              D.RefKind = formatString("%s array",
                                       visName(P, FieldId(L.A)).c_str());
          }
        D.Detail = formatString("removed allocation at %s pc %u",
                                P.qualifiedMethodName(CM).c_str(), CPc);
        break;
      }
      if (!D.Applied)
        D.Detail = "removal refused: " + Why;
      break;
    }
    case RewriteStrategy::LazyAllocation: {
      if (!Opts.AllowLazyAllocation) {
        D.Detail = "strategy disabled";
        break;
      }
      auto Candidates = allocCandidates(P, Report.log().Sites, G.Site);
      if (Candidates.empty()) {
        D.Detail = "no allocation candidate on the chain";
        break;
      }
      std::string Why = "no instance-field sink on the chain";
      for (auto [CM, CPc] : Candidates) {
        PassContext Ctx(P);
        const AllocSiteInfo *A = Ctx.VFA.allocAt(CM, CPc);
        FieldId Sink;
        if (A)
          for (const Location &L : A->Sinks)
            if (L.K == Location::Kind::InstanceField) {
              if (Sink.isValid() && !(Sink == FieldId(L.A))) {
                Sink = FieldId();
                break;
              }
              Sink = FieldId(L.A);
            }
        if (!Sink.isValid())
          continue;
        std::vector<LazifiedField> Done;
        if (!lazifyField(P, Ctx, Sink, Done, &Why))
          continue;
        elideLazyGuards(P, Done.back());
        D.Applied = true;
        D.RefKind = visName(P, Sink);
        D.Detail = formatString("lazified %s (%u guarded reads, %u elided)",
                                P.qualifiedFieldName(Sink).c_str(),
                                Done.back().GuardedReads,
                                Done.back().ElidedGuards);
        break;
      }
      if (!D.Applied)
        D.Detail = "lazy allocation refused: " + Why;
      break;
    }
    case RewriteStrategy::AssignNull: {
      if (!Opts.AllowAssignNull) {
        D.Detail = "strategy disabled";
        break;
      }
      D.Applied = applyAssignNull(P, Report, G, D);
      break;
    }
    case RewriteStrategy::None:
      D.Detail = D.Pattern == LifetimePattern::HighVariance
                     ? "high drag variance: no transformation helps "
                       "(db-style repository)"
                     : "no pattern matched";
      break;
    }
    Decisions.push_back(std::move(D));
  };

  for (const SiteGroup *G : Selected)
    Handle(*G, /*InsertPhase=*/false);
  for (const SiteGroup *G : Selected)
    Handle(*G, /*InsertPhase=*/true);
  return Decisions;
}

std::string jdrag::transform::renderDecisions(
    const std::vector<OptimizerDecision> &Decisions) {
  TextTable T({"drag MB^2", "%drag", "pattern", "strategy", "ref kind",
               "applied", "detail"});
  T.setAlign(0, TextTable::Align::Right);
  T.setAlign(1, TextTable::Align::Right);
  for (const OptimizerDecision &D : Decisions)
    T.addRow({formatFixed(D.SiteDragMB2, 4),
              formatFixed(D.SiteDragFraction * 100.0, 1),
              patternName(D.Pattern), strategyName(D.Strategy),
              D.RefKind.empty() ? "-" : D.RefKind,
              D.Applied ? "yes" : "no", D.Detail});
  return T.render();
}
