//===- transform/AutoOptimizer.h - Profile-driven rewriting -----*- C++ -*-===//
//
// Part of jdrag (PLDI 2001 "Heap Profiling for Space-Efficient Java").
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The closed loop the paper performs by hand and envisions automating
/// ("our off-line profiler tool can be used either directly by a
/// programmer or to produce input for a profile-based optimizer",
/// section 1.2): take a drag report, walk the top allocation sites,
/// classify each site's lifetime pattern (section 3.4), pick the
/// suggested rewriting strategy, validate its legality with the static
/// analyses of section 5, and apply it to the program.
///
/// Strategy selection per site:
///   pattern 1 (all never-used)   -> dead code removal at the site
///   pattern 2 (most never-used)  -> lazy allocation of the sink field
///   pattern 3 (most large drag)  -> assigning null, variant chosen from
///                                   the dominant last-use site's operand
///                                   (local / static field / container
///                                   array element)
///   pattern 4 (high variance)    -> nothing (db's repository)
///
//===----------------------------------------------------------------------===//

#ifndef JDRAG_TRANSFORM_AUTOOPTIMIZER_H
#define JDRAG_TRANSFORM_AUTOOPTIMIZER_H

#include "analysis/DragReport.h"
#include "analysis/Patterns.h"
#include "transform/AssignNull.h"
#include "transform/DeadCodeRemoval.h"
#include "transform/LazyAllocation.h"

#include <string>
#include <vector>

namespace jdrag::transform {

/// Optimizer knobs.
struct OptimizerOptions {
  std::uint32_t TopK = 12;                 ///< sites considered
  double MinSiteDragFraction = 0.01;       ///< skip sites under 1% of drag
  analysis::PatternThresholds Thresholds;
  bool AllowDeadCodeRemoval = true;
  bool AllowLazyAllocation = true;
  bool AllowAssignNull = true;
};

/// One per-site decision, applied or refused (Table 5 raw material).
struct OptimizerDecision {
  profiler::SiteId Site = profiler::InvalidSite;
  std::string SiteDesc;
  double SiteDragMB2 = 0;
  double SiteDragFraction = 0;
  analysis::LifetimePattern Pattern = analysis::LifetimePattern::Mixed;
  analysis::RewriteStrategy Strategy = analysis::RewriteStrategy::None;
  bool Applied = false;
  std::string RefKind; ///< Table 5's reference kind, e.g. "private array"
  std::string Detail;  ///< what was done, or why it was refused
};

/// Applies profile-driven rewrites to \p P (which must be the program
/// the report was measured on). Returns the per-site decisions.
std::vector<OptimizerDecision>
autoOptimize(ir::Program &P, const analysis::DragReport &Report,
             OptimizerOptions Opts = OptimizerOptions());

/// Renders decisions as a text table (Table 5 shape).
std::string renderDecisions(const std::vector<OptimizerDecision> &Decisions);

} // namespace jdrag::transform

#endif // JDRAG_TRANSFORM_AUTOOPTIMIZER_H
