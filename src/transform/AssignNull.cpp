//===- transform/AssignNull.cpp -------------------------------------------===//

#include "transform/AssignNull.h"

#include "sa/CFG.h"
#include "sa/Liveness.h"
#include "sa/StackFlow.h"
#include "support/Format.h"
#include "transform/MethodEditor.h"

#include <set>

using namespace jdrag;
using namespace jdrag::ir;
using namespace jdrag::sa;
using namespace jdrag::transform;

namespace {

Instruction makeInst(Opcode Op, std::int32_t A = 0, std::uint32_t Line = 0) {
  Instruction I;
  I.Op = Op;
  I.A = A;
  I.Line = Line;
  return I;
}

} // namespace

std::vector<InsertedNull> jdrag::transform::nullifyDeadLocals(Program &P,
                                                              MethodId M) {
  std::vector<InsertedNull> Out;
  MethodInfo &MI = P.methodOf(M);
  if (MI.IsNative || MI.numLocals() > 64)
    return Out;
  std::uint32_t N = static_cast<std::uint32_t>(MI.Code.size());

  LivenessAnalysis LA(P, MI);

  // Predecessors over all edges (normal and exceptional).
  std::vector<std::vector<std::uint32_t>> Preds(N);
  std::vector<std::uint32_t> Succs;
  for (std::uint32_t Pc = 0; Pc != N; ++Pc) {
    Succs.clear();
    normalSuccessors(MI, Pc, Succs);
    exceptionalSuccessors(MI, Pc, Succs);
    for (std::uint32_t S : Succs)
      if (S < N)
        Preds[S].push_back(Pc);
  }

  // A slot is nulled at every live->dead boundary: instruction P where
  // the slot is dead on entry but live on entry to some predecessor (the
  // predecessor was its last use). This covers straight-line last uses
  // and loop exits alike -- inserting before P is safe on every inbound
  // edge because deadness at P is path-insensitive.
  MethodEditor Editor(MI);
  for (std::uint32_t Slot = 0, E = MI.numLocals(); Slot != E; ++Slot) {
    if (MI.LocalKinds[Slot] != ValueKind::Ref)
      continue;
    for (std::uint32_t Pc = 0; Pc != N; ++Pc) {
      if (LA.isLiveIn(Pc, Slot))
        continue;
      bool PredWasLive = false;
      for (std::uint32_t Q : Preds[Pc])
        if (LA.isLiveIn(Q, Slot))
          PredWasLive = true;
      if (!PredWasLive)
        continue;
      const Instruction &I = MI.Code[Pc];
      // Pointless insertions: the frame dies immediately, or the slot is
      // about to be overwritten anyway.
      if (isReturn(I.Op))
        continue;
      if (I.Op == Opcode::AStore && static_cast<std::uint32_t>(I.A) == Slot)
        continue;
      // Idempotence: a null store of this slot is already in place at
      // this boundary (several slots may share one boundary, producing a
      // run of `aconst_null; astore` pairs).
      bool AlreadyNulled = false;
      for (std::uint32_t Q = Pc;
           Q + 1 < N && MI.Code[Q].Op == Opcode::AConstNull &&
           MI.Code[Q + 1].Op == Opcode::AStore;
           Q += 2)
        if (static_cast<std::uint32_t>(MI.Code[Q + 1].A) == Slot) {
          AlreadyNulled = true;
          break;
        }
      if (AlreadyNulled)
        continue;
      std::uint32_t Line = I.Line;
      Editor.insertBefore(Pc, {makeInst(Opcode::AConstNull, 0, Line),
                               makeInst(Opcode::AStore,
                                        static_cast<std::int32_t>(Slot),
                                        Line)});
      InsertedNull R;
      R.K = InsertedNull::Kind::Local;
      R.Method = M;
      R.AfterPc = Pc;
      R.Slot = Slot;
      Out.push_back(R);
    }
  }
  Editor.apply();
  return Out;
}

std::vector<InsertedNull>
jdrag::transform::nullifyDeadLocalsEverywhere(Program &P,
                                              const PassContext &Ctx) {
  std::vector<InsertedNull> Out;
  for (MethodId M : Ctx.CG.reachableMethods()) {
    if (P.classOf(P.methodOf(M).Owner).IsLibrary)
      continue;
    auto Ins = nullifyDeadLocals(P, M);
    Out.insert(Out.end(), Ins.begin(), Ins.end());
  }
  return Out;
}

bool jdrag::transform::nullifyStaticAfter(Program &P, const PassContext &Ctx,
                                          FieldId F, std::uint32_t AfterPc,
                                          std::vector<InsertedNull> &Inserted,
                                          std::string *Why) {
  auto Refuse = [&](const std::string &Reason) {
    if (Why)
      *Why = Reason;
    return false;
  };

  const FieldInfo &FI = P.fieldOf(F);
  if (!FI.IsStatic || FI.Kind != ValueKind::Ref)
    return Refuse("field is not a static reference");
  MethodId Main = P.MainMethod;
  MethodInfo &MI = P.methodOf(Main);
  if (AfterPc >= MI.Code.size())
    return Refuse("insertion point out of range");
  const Instruction &At = MI.Code[AfterPc];
  if (isBranch(At.Op) || isUnconditionalTerminator(At.Op))
    return Refuse("cannot insert after a control transfer");

  // Forward-reachable code: methods callable from main after AfterPc,
  // plus every reachable finalizer (finalizers can run at any GC).
  std::set<std::uint32_t> Reach;
  std::vector<MethodId> Worklist;
  auto Push = [&](MethodId M) {
    if (M.isValid() && Reach.insert(M.Index).second)
      Worklist.push_back(M);
  };
  for (const CallSite &CS : Ctx.CG.callSitesIn(Main))
    if (CS.Pc > AfterPc)
      for (MethodId T : Ctx.CG.targetsOf(Main, CS.Pc))
        Push(T);
  for (MethodId M : Ctx.CG.reachableMethods())
    if (P.methodOf(M).IsFinalizer)
      Push(M);
  while (!Worklist.empty()) {
    MethodId M = Worklist.back();
    Worklist.pop_back();
    for (const CallSite &CS : Ctx.CG.callSitesIn(M))
      for (MethodId T : Ctx.CG.targetsOf(M, CS.Pc))
        Push(T);
  }

  // No read of F may execute after the insertion point.
  auto ReadsF = [&](const MethodInfo &M, std::uint32_t FromPc) {
    for (std::uint32_t Pc = FromPc,
                       N = static_cast<std::uint32_t>(M.Code.size());
         Pc != N; ++Pc)
      if (M.Code[Pc].Op == Opcode::GetStatic &&
          static_cast<std::uint32_t>(M.Code[Pc].A) == F.Index)
        return true;
    return false;
  };
  if (ReadsF(MI, AfterPc + 1))
    return Refuse("main itself reads the field after the insertion point");
  for (std::uint32_t MIdx : Reach)
    if (ReadsF(P.Methods[MIdx], 0))
      return Refuse(formatString(
          "field is read in forward-reachable method %s",
          P.qualifiedMethodName(MethodId(MIdx)).c_str()));

  std::uint32_t Line = At.Line;
  MethodEditor Editor(MI);
  Editor.insertAfter(AfterPc,
                     {makeInst(Opcode::AConstNull, 0, Line),
                      makeInst(Opcode::PutStatic,
                               static_cast<std::int32_t>(F.Index), Line)});
  Editor.apply();

  InsertedNull R;
  R.K = InsertedNull::Kind::StaticField;
  R.Method = Main;
  R.AfterPc = AfterPc;
  R.Field = F;
  Inserted.push_back(R);
  return true;
}

std::vector<InsertedNull> jdrag::transform::nullifyPoppedArrayElements(
    Program &P, ClassId Owner, FieldId ArrayField, FieldId SizeField,
    std::string *Why) {
  std::vector<InsertedNull> Out;
  const ClassInfo &C = P.classOf(Owner);

  // Resolve the size field when not named: the unique int instance field
  // of Owner that is decremented by one somewhere in the class.
  auto IsDecrementOf = [&](const MethodInfo &M, const StackFlow &SF,
                           std::uint32_t Pc, FieldId F) {
    const Instruction &I = M.Code[Pc];
    if (I.Op != Opcode::PutField ||
        static_cast<std::uint32_t>(I.A) != F.Index)
      return false;
    // Receiver must be `this`.
    StackCell Recv = SF.operand(Pc, 1);
    if (!(Recv.isSingle() && Recv.single().O == StackValue::Origin::Local &&
          Recv.single().Aux == 0))
      return false;
    // Value must come from `this.F - 1`.
    StackCell Val = SF.operand(Pc, 0);
    if (!(Val.isSingle() && Val.single().O == StackValue::Origin::Const))
      return false;
    std::uint32_t SubPc = Val.single().DefPc;
    if (M.Code[SubPc].Op != Opcode::ISub)
      return false;
    StackCell A = SF.operand(SubPc, 1), B = SF.operand(SubPc, 0);
    bool AIsField = A.isSingle() &&
                    A.single().O == StackValue::Origin::Field &&
                    static_cast<std::uint32_t>(A.single().Aux) == F.Index;
    bool BIsOne = B.isSingle() &&
                  B.single().O == StackValue::Origin::Const &&
                  M.Code[B.single().DefPc].Op == Opcode::IConst &&
                  M.Code[B.single().DefPc].IVal == 1;
    return AIsField && BIsOne;
  };

  if (!SizeField.isValid()) {
    for (FieldId F : C.DeclaredInstanceFields) {
      if (P.fieldOf(F).Kind != ValueKind::Int)
        continue;
      for (MethodId M : C.DeclaredMethods) {
        const MethodInfo &MI = P.methodOf(M);
        if (MI.IsNative)
          continue;
        StackFlow SF(P, MI);
        for (std::uint32_t Pc = 0,
                           N = static_cast<std::uint32_t>(MI.Code.size());
             Pc != N; ++Pc)
          if (IsDecrementOf(MI, SF, Pc, F)) {
            if (SizeField.isValid() && SizeField != F) {
              if (Why)
                *Why = "multiple decremented int fields; name one";
              return Out;
            }
            SizeField = F;
          }
      }
    }
    if (!SizeField.isValid()) {
      if (Why)
        *Why = "no decremented int field found in class";
      return Out;
    }
  }

  for (MethodId M : C.DeclaredMethods) {
    MethodInfo &MI = P.methodOf(M);
    if (MI.IsNative || MI.IsStatic)
      continue;
    // The inserted fix re-loads `this` from slot 0, so the slot must
    // still hold the receiver at every program point (a prior
    // assigning-null pass may have nulled a dead `this`).
    bool ThisStable = true;
    for (const Instruction &I : MI.Code)
      if (I.Op == Opcode::AStore && I.A == 0)
        ThisStable = false;
    if (!ThisStable)
      continue;
    StackFlow SF(P, MI);
    MethodEditor Editor(MI);
    for (std::uint32_t Pc = 0, N = static_cast<std::uint32_t>(MI.Code.size());
         Pc != N; ++Pc) {
      if (!IsDecrementOf(MI, SF, Pc, SizeField))
        continue;
      std::uint32_t Line = MI.Code[Pc].Line;
      // this.arr[this.size] = null  (the popped slot is now dead; the
      // container invariant 0 <= size < arr.length after a pop makes the
      // store in-bounds -- the array-liveness analysis of [CC 2000]).
      Editor.insertAfter(
          Pc, {makeInst(Opcode::ALoad, 0, Line),
               makeInst(Opcode::GetField,
                        static_cast<std::int32_t>(ArrayField.Index), Line),
               makeInst(Opcode::ALoad, 0, Line),
               makeInst(Opcode::GetField,
                        static_cast<std::int32_t>(SizeField.Index), Line),
               makeInst(Opcode::AConstNull, 0, Line),
               makeInst(Opcode::AAStore, 0, Line)});
      InsertedNull R;
      R.K = InsertedNull::Kind::ArrayElement;
      R.Method = M;
      R.AfterPc = Pc;
      R.Field = ArrayField;
      Out.push_back(R);
    }
    Editor.apply();
  }
  if (Out.empty() && Why)
    *Why = "no size-decrement sites found";
  return Out;
}
