//===- transform/AssignNull.h - Null dead references ------------*- C++ -*-===//
//
// Part of jdrag (PLDI 2001 "Heap Profiling for Space-Efficient Java").
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's "assigning null" strategy (section 3.3.1) in its three
/// reference-kind variants (Table 5):
///
///  * Local reference variables: liveness analysis finds the last use of
///    each ref slot; a `aconst_null; astore` pair is inserted right after
///    it (Agesen-et-al-style type-precision, section 5.1's
///    liveness-analysis).
///  * Static reference fields: a null store at a phase boundary in main,
///    validated by call-graph forward-reachability -- no read of the
///    field can execute after the insertion point (the paper's euler and
///    analyzer rewrites; "(R)" in Table 5).
///  * Array elements backing a vector-like container: after the
///    container's size field is decremented, the now-dead element slot
///    is overwritten with null (the paper's jess rewrite and the array
///    liveness analysis of [Shaham et al., CC 2000]).
///
//===----------------------------------------------------------------------===//

#ifndef JDRAG_TRANSFORM_ASSIGNNULL_H
#define JDRAG_TRANSFORM_ASSIGNNULL_H

#include "transform/DeadCodeRemoval.h" // PassContext

#include <string>
#include <vector>

namespace jdrag::transform {

/// One inserted null assignment.
struct InsertedNull {
  enum class Kind : std::uint8_t { Local, StaticField, ArrayElement };
  Kind K = Kind::Local;
  ir::MethodId Method;
  std::uint32_t AfterPc = 0; ///< pc (pre-edit) the store was placed after
  std::uint32_t Slot = 0;    ///< local slot (Kind::Local)
  ir::FieldId Field;         ///< static field / array field
};

/// Inserts `aconst_null; astore` after the last use of every dead ref
/// local in \p M. Returns insertions performed. Never changes program
/// results: the slot is provably dead at every insertion point.
std::vector<InsertedNull> nullifyDeadLocals(ir::Program &P, ir::MethodId M);

/// Runs nullifyDeadLocals on every reachable application method.
std::vector<InsertedNull> nullifyDeadLocalsEverywhere(ir::Program &P,
                                                      const PassContext &Ctx);

/// Inserts `aconst_null; putstatic F` after \p AfterPc in main. Legality
/// (checked): \p Main is the program entry (no callers, no frames below),
/// and no read of \p F is reachable from any instruction after
/// \p AfterPc. Returns false with \p Why on refusal.
bool nullifyStaticAfter(ir::Program &P, const PassContext &Ctx, ir::FieldId F,
                        std::uint32_t AfterPc,
                        std::vector<InsertedNull> &Inserted,
                        std::string *Why = nullptr);

/// For the vector idiom: in every method of \p Owner that decrements
/// int field \p SizeField, inserts `this.ArrayField[this.SizeField] =
/// null` right after the decrement. Returns insertions performed.
/// \p SizeField may be invalid: the pass then looks for a unique int
/// field of \p Owner that is decremented anywhere in the class.
std::vector<InsertedNull> nullifyPoppedArrayElements(ir::Program &P,
                                                     ir::ClassId Owner,
                                                     ir::FieldId ArrayField,
                                                     ir::FieldId SizeField,
                                                     std::string *Why = nullptr);

} // namespace jdrag::transform

#endif // JDRAG_TRANSFORM_ASSIGNNULL_H
