//===- analysis/ReportPrinter.cpp -----------------------------------------===//

#include "analysis/ReportPrinter.h"

#include "support/Format.h"
#include "support/Table.h"

#include <algorithm>

using namespace jdrag;
using namespace jdrag::analysis;

std::string jdrag::analysis::renderSiteDetail(const DragReport &Report,
                                              const SiteGroup &G,
                                              PatternThresholds T) {
  const ir::Program &P = Report.program();
  const profiler::SiteTable &Sites = Report.log().Sites;
  LifetimePattern Pat = classifyPattern(G, T, Report.reachableIntegral());

  bool Sampled = Report.log().SampleRate != 0;
  std::string Out;
  Out += formatString("site: %s\n", Sites.describe(P, G.Site).c_str());
  Out += formatString(
      "  drag %.4f MB^2 (%.1f%% of total), %llu objects, %llu bytes\n",
      toMB2(G.TotalDrag),
      Report.totalDrag() > 0 ? 100.0 * G.TotalDrag / Report.totalDrag() : 0.0,
      static_cast<unsigned long long>(G.ObjectCount),
      static_cast<unsigned long long>(G.TotalBytes));
  if (Sampled)
    Out += formatString(
        "  sampled: %llu records, drag CI95 +/- %.4f MB^2, "
        "est %.0f objects / %.0f bytes\n",
        static_cast<unsigned long long>(G.ObjectCount), toMB2(G.dragCI95()),
        G.EstObjects, G.EstBytes);
  Out += formatString(
      "  never-used: %llu objects (%.1f%%), %.4f MB^2 (%.1f%% of site drag)\n",
      static_cast<unsigned long long>(G.NeverUsedCount),
      100.0 * G.neverUsedObjectFraction(), toMB2(G.NeverUsedDrag),
      100.0 * G.neverUsedDragFraction());
  Out += formatString(
      "  drag time: mean %.0f bytes, cv %.2f; lifetime mean %.0f bytes\n",
      G.DragTimePerObject.mean(), G.DragPerObject.coefficientOfVariation(),
      G.LifeTimePerObject.mean());
  Out += "  drag-time histogram:";
  for (std::size_t B = 0; B != SiteGroup::NumHistoBuckets; ++B)
    if (G.DragTimeHisto[B])
      Out += formatString(
          " %s:%llu", SiteGroup::histoBucketLabel(B).c_str(),
          static_cast<unsigned long long>(G.DragTimeHisto[B]));
  Out += '\n';
  Out += formatString("  pattern: %s  =>  %s\n", patternName(Pat),
                      strategyName(strategyFor(Pat)));
  SiteId LastUse = G.dominantLastUseSite();
  if (LastUse != InvalidSite)
    Out += formatString("  dominant last-use site: %s\n",
                        Sites.describe(P, LastUse).c_str());
  return Out;
}

std::string jdrag::analysis::renderDragReport(const DragReport &Report,
                                              ReportOptions Opts) {
  const ir::Program &P = Report.program();
  const profiler::SiteTable &Sites = Report.log().Sites;

  bool Sampled = Report.log().SampleRate != 0;
  std::string Out = "=== jdrag drag report ===\n";
  if (Sampled)
    Out += formatString(
        "sampled profile: 1 allocation per ~%llu heap bytes (seed 0x%llx); "
        "drag and byte figures are inverse-probability estimates, object "
        "counts are raw sample counts\n",
        static_cast<unsigned long long>(Report.log().SampleRate),
        static_cast<unsigned long long>(Report.log().SampleSeed));
  if (!Report.log().Complete)
    Out += formatString(
        "WARNING: incomplete recording -- %llu chunks (%llu bytes) of the "
        "event stream were dropped; every figure below is a lower bound\n",
        static_cast<unsigned long long>(Report.log().DroppedChunks),
        static_cast<unsigned long long>(Report.log().DroppedBytes));
  Out += formatString(
      "reachable integral %.4f MB^2, in-use integral %.4f MB^2, "
      "total drag %.4f MB^2\n\n",
      toMB2(Report.reachableIntegral()), toMB2(Report.inUseIntegral()),
      toMB2(Report.totalDrag()));

  std::vector<std::string> Headers = {"#", "drag MB^2", "% total", "objs",
                                      "never-used", "pattern",
                                      "nested allocation site"};
  if (Sampled)
    Headers.insert(Headers.begin() + 2, "+/-95%");
  TextTable Table(Headers);
  for (unsigned Col = 0, E = Sampled ? 6u : 5u; Col != E; ++Col)
    Table.setAlign(Col, TextTable::Align::Right);
  std::uint32_t N = std::min<std::uint32_t>(
      Opts.MaxSites, static_cast<std::uint32_t>(Report.groups().size()));
  for (std::uint32_t I = 0; I != N; ++I) {
    const SiteGroup &G = Report.groups()[I];
    LifetimePattern Pat = classifyPattern(G, Opts.Thresholds, Report.reachableIntegral());
    std::vector<std::string> Row = {
        formatString("%u", I + 1), formatFixed(toMB2(G.TotalDrag), 4),
        formatFixed(Report.totalDrag() > 0
                        ? 100.0 * G.TotalDrag / Report.totalDrag()
                        : 0.0,
                    1),
        formatString("%llu", static_cast<unsigned long long>(G.ObjectCount)),
        formatString("%llu",
                     static_cast<unsigned long long>(G.NeverUsedCount)),
        patternName(Pat), Sites.describe(P, G.Site)};
    if (Sampled)
      Row.insert(Row.begin() + 2, formatFixed(toMB2(G.dragCI95()), 4));
    Table.addRow(Row);
  }
  Out += Table.render();

  if (Opts.ShowCoarse && !Report.coarseGroups().empty()) {
    Out += "\n--- coarse partition (plain allocation sites) ---\n";
    TextTable CT({"drag MB^2", "objs", "allocation site"});
    CT.setAlign(0, TextTable::Align::Right);
    CT.setAlign(1, TextTable::Align::Right);
    std::uint32_t CN = std::min<std::uint32_t>(
        Opts.MaxSites, static_cast<std::uint32_t>(Report.coarseGroups().size()));
    for (std::uint32_t I = 0; I != CN; ++I) {
      const CoarseGroup &C = Report.coarseGroups()[I];
      CT.addRow({formatFixed(toMB2(C.TotalDrag), 4),
                 formatString("%llu",
                              static_cast<unsigned long long>(C.ObjectCount)),
                 C.Method.isValid()
                     ? formatString("%s:%u",
                                    P.qualifiedMethodName(C.Method).c_str(),
                                    C.Line)
                     : std::string("<vm>")});
    }
    Out += CT.render();
  }

  // "A large drag caused by never-used objects is a 'sure bet' for code
  // rewriting" (paper section 2.2): list the never-used partition.
  {
    std::vector<const SiteGroup *> NeverUsed;
    for (const SiteGroup &G : Report.groups())
      if (G.NeverUsedDrag > 0)
        NeverUsed.push_back(&G);
    if (!NeverUsed.empty()) {
      Out += "\n--- never-used objects (sure bets) ---\n";
      TextTable NT({"drag MB^2", "objs", "nested allocation site"});
      NT.setAlign(0, TextTable::Align::Right);
      NT.setAlign(1, TextTable::Align::Right);
      std::uint32_t NN = std::min<std::uint32_t>(
          Opts.MaxSites, static_cast<std::uint32_t>(NeverUsed.size()));
      for (std::uint32_t I = 0; I != NN; ++I) {
        const SiteGroup &G = *NeverUsed[I];
        NT.addRow({formatFixed(toMB2(G.NeverUsedDrag), 4),
                   formatString("%llu", static_cast<unsigned long long>(
                                            G.NeverUsedCount)),
                   Sites.describe(P, G.Site)});
      }
      Out += NT.render();
    }
  }

  if (!Report.classGroups().empty()) {
    Out += "\n--- per-class partition ---\n";
    TextTable KT({"drag MB^2", "objs", "bytes", "never-used", "class"});
    for (unsigned Col : {0u, 1u, 2u, 3u})
      KT.setAlign(Col, TextTable::Align::Right);
    std::uint32_t KN = std::min<std::uint32_t>(
        Opts.MaxSites,
        static_cast<std::uint32_t>(Report.classGroups().size()));
    for (std::uint32_t I = 0; I != KN; ++I) {
      const ClassGroup &G = Report.classGroups()[I];
      KT.addRow(
          {formatFixed(toMB2(G.TotalDrag), 4),
           formatString("%llu", static_cast<unsigned long long>(G.ObjectCount)),
           formatString("%llu", static_cast<unsigned long long>(G.TotalBytes)),
           formatString("%llu",
                        static_cast<unsigned long long>(G.NeverUsedCount)),
           G.name(P)});
    }
    Out += KT.render();
  }

  if (Opts.ShowLastUseSites) {
    Out += "\n--- top sites in detail ---\n";
    std::uint32_t DN = std::min<std::uint32_t>(
        5, static_cast<std::uint32_t>(Report.groups().size()));
    for (std::uint32_t I = 0; I != DN; ++I)
      Out += renderSiteDetail(Report, Report.groups()[I], Opts.Thresholds);
  }
  return Out;
}
