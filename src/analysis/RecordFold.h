//===- analysis/RecordFold.h - Streaming record fold engine -----*- C++ -*-===//
//
// Part of jdrag (PLDI 2001 "Heap Profiling for Space-Efficient Java").
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Phase 2 as a single streaming pass. A RecordFold consumes finished
/// ObjectRecords one at a time and keeps only O(live sites) of state, so
/// every analysis -- the drag report (site/coarse/class partitions plus
/// the Patterns feature set), the Roejemo-Runciman lifetime
/// decomposition, and the Figure 2 heap curves -- can run directly off
/// the replay decoder (or the live VM) without materializing
/// `ProfileLog::Records` (~80 B per object ever allocated).
///
/// Folds are *mergeable*: `replayProfileParallel`'s chunk shards build
/// shard-local folds and merge them into one. Merged results are
/// bit-identical to a sequential fold, which in turn is bit-identical to
/// the materialized pass, because every floating-point sum is kept in an
/// ExactSum fixed-point superaccumulator (exactly associative and
/// commutative) and converted to double exactly once, at finalization.
/// Everything else a fold keeps is integer arithmetic or min/max, which
/// are order-free already. See docs/analysis.md.
///
//===----------------------------------------------------------------------===//

#ifndef JDRAG_ANALYSIS_RECORDFOLD_H
#define JDRAG_ANALYSIS_RECORDFOLD_H

#include "analysis/DragReport.h"
#include "analysis/HeapCurves.h"
#include "analysis/LagDragVoid.h"
#include "support/ExactSum.h"

#include <cstdio>
#include <limits>
#include <unordered_map>
#include <vector>

namespace jdrag::analysis {

/// One streaming consumer of finished object records.
///
/// Contract: any number of fold() calls, then (optionally) merge() calls
/// folding in other instances of the *same concrete type*, then at most
/// one remapSites(), then finalization (each concrete fold exposes its
/// own typed finish()). fold() after remapSites() is undefined.
class RecordFold {
public:
  virtual ~RecordFold();

  /// Folds one finished record into the running state.
  virtual void fold(const profiler::ObjectRecord &R) = 0;

  /// Folds another instance of the same concrete type into this one.
  /// For every fold shipped here the merged state is bit-identical to
  /// having fold()ed the other instance's records into *this directly,
  /// in any order.
  virtual void merge(const RecordFold &O) = 0;

  /// Rewrites every stored site id through \p Map (index = id the
  /// records carried, value = final log-local id). Ids outside the map
  /// -- including InvalidSite -- are left as InvalidSite. The sharded
  /// replay path folds in stream-id space and remaps once, here, after
  /// the last merge.
  virtual void remapSites(const std::vector<profiler::SiteId> &Map);

  /// Approximate resident bytes of fold state; the O(sites) claim made
  /// measurable (BENCH_9).
  virtual std::size_t stateBytes() const = 0;
};

/// Open-addressed hash index from an integer key to a dense uint32
/// value: linear probing, power-of-two capacity grown at 50% load,
/// multiplicative hashing -- the same trick the PR-5 site-table trie
/// uses for child lookup. This replaces the per-record
/// `unordered_map::try_emplace` on the fold hot path. Empty slots are
/// tagged on the *value* (NoVal), so every key bit pattern -- including
/// InvalidSite (~0u), the never-used last-use bucket -- is storable.
template <typename KeyT> class OpenIndex {
public:
  static constexpr std::uint32_t NoVal = 0xFFFFFFFFu;

  explicit OpenIndex(std::size_t ExpectedKeys = 0) {
    if (ExpectedKeys)
      rehash(slotCountFor(ExpectedKeys));
  }

  /// Returns the value stored under \p Key, inserting \p ValIfNew first
  /// if the key is not present.
  std::uint32_t lookupOrInsert(KeyT Key, std::uint32_t ValIfNew) {
    if (Slots.empty() || Used * 2 >= Slots.size())
      rehash(Slots.empty() ? 16 : Slots.size() * 2);
    std::size_t I = bucket(Key);
    while (Slots[I].Val != NoVal) {
      if (Slots[I].Key == Key)
        return Slots[I].Val;
      I = (I + 1) & (Slots.size() - 1);
    }
    Slots[I].Key = Key;
    Slots[I].Val = ValIfNew;
    ++Used;
    return ValIfNew;
  }

  std::size_t size() const { return Used; }
  std::size_t stateBytes() const { return Slots.capacity() * sizeof(Slot); }

private:
  struct Slot {
    KeyT Key;
    std::uint32_t Val = NoVal;
  };

  static std::size_t slotCountFor(std::size_t Keys) {
    std::size_t N = 16;
    while (N < Keys * 2)
      N *= 2;
    return N;
  }

  std::size_t bucket(KeyT Key) const {
    // Fibonacci hashing: the high bits of Key * 2^64/phi spread runs of
    // consecutive ids; shift keeps exactly log2(capacity) of them.
    return static_cast<std::size_t>(
        (static_cast<std::uint64_t>(Key) * 0x9E3779B97F4A7C15ull) >> Shift);
  }

  void rehash(std::size_t NewSize) {
    std::vector<Slot> Old = std::move(Slots);
    Slots.assign(NewSize, Slot());
    Shift = 64;
    for (std::size_t N = NewSize; N > 1; N /= 2)
      --Shift;
    for (const Slot &S : Old) {
      if (S.Val == NoVal)
        continue;
      std::size_t I = bucket(S.Key);
      while (Slots[I].Val != NoVal)
        I = (I + 1) & (NewSize - 1);
      Slots[I] = S;
    }
  }

  std::vector<Slot> Slots;
  std::size_t Used = 0;
  unsigned Shift = 64;
};

/// Everything the DragReport presents, produced by SiteGroupFold::finish
/// and adopted wholesale by the DragReport(P, Log, Data) constructor.
struct DragReportData {
  std::vector<SiteGroup> Groups; ///< sorted by (drag desc, site asc)
  std::vector<CoarseGroup> CoarseGroups;
  std::vector<ClassGroup> ClassGroups;
  std::unordered_map<SiteId, std::size_t> GroupIndex;
  SpaceTime TotalDragSum = 0;
  SpaceTime ReachableSum = 0;
  SpaceTime InUseSum = 0;
};

/// The drag report's aggregation pass as a mergeable fold: site groups
/// (with the full Patterns feature set: never-used splits, large-drag
/// counts, per-object moment sums, the drag-time histogram and the
/// last-use partition), the per-class partition, and the program-wide
/// space-time totals. State is O(distinct sites + classes); per-record
/// work is one open-addressed probe per partition, no hash maps.
class SiteGroupFold : public RecordFold {
public:
  /// \p SampleRate is ProfileLog::SampleRate (0 = exact log).
  /// \p SiteCountHint presizes the index and group storage (pass the
  /// site-table size; 0 is fine). \p UseMapIndex swaps the
  /// open-addressed index for unordered_map -- the bench ablation rung,
  /// never used by production callers.
  explicit SiteGroupFold(std::uint64_t SampleRate,
                         std::uint32_t SiteCountHint = 0,
                         bool UseMapIndex = false);

  void fold(const profiler::ObjectRecord &R) override;
  void merge(const RecordFold &O) override;
  void remapSites(const std::vector<profiler::SiteId> &Map) override;
  std::size_t stateBytes() const override;

  /// Finalizes: converts every accumulator with one rounding step,
  /// attaches the per-group last-use partitions (site-ascending), sorts
  /// all three partitions by their deterministic total orders, and
  /// builds the coarse partition from \p Sites.
  DragReportData finish(const ir::Program &P,
                        const profiler::SiteTable &Sites) const;

  std::uint64_t recordCount() const { return Records; }

private:
  /// Per-site accumulator: exact sums (ExactSum) for everything that
  /// finalizes to a double, raw integers for the rest.
  struct GroupAccum {
    SiteId Site = profiler::InvalidSite;
    std::uint64_t ObjectCount = 0;
    std::uint64_t NeverUsedCount = 0;
    std::uint64_t TotalBytes = 0;
    std::uint64_t LargeDragCount = 0;
    ExactSum EstObjects, EstBytes, TotalDrag, DragVariance, NeverUsedDrag;
    // Moment sums for the three per-object RunningStat distributions.
    ExactSum DragSum, DragSq, DragTimeSum, DragTimeSq, LifeSum, LifeSq;
    double DragMin = std::numeric_limits<double>::infinity();
    double DragMax = -std::numeric_limits<double>::infinity();
    double DragTimeMin = std::numeric_limits<double>::infinity();
    double DragTimeMax = -std::numeric_limits<double>::infinity();
    double LifeMin = std::numeric_limits<double>::infinity();
    double LifeMax = -std::numeric_limits<double>::infinity();
    std::array<std::uint64_t, SiteGroup::NumHistoBuckets> Histo = {};
  };

  /// One (group, last-use site) drag cell; Key = group index << 32 |
  /// last-use site (InvalidSite buckets the never-used drag).
  struct LastUseAccum {
    std::uint64_t Key = 0;
    ExactSum Drag;
  };

  /// Per-class accumulator; Key follows the materialized partition:
  /// class index, or (1 << 40) + array kind for array buckets.
  struct ClassAccum {
    std::uint64_t Key = 0;
    ir::ClassId Class;
    ir::ArrayKind AKind = ir::ArrayKind::Int;
    bool IsArray = false;
    std::uint64_t ObjectCount = 0;
    std::uint64_t TotalBytes = 0;
    std::uint64_t NeverUsedCount = 0;
    ExactSum TotalDrag;
  };

  std::uint32_t groupFor(SiteId Site);
  std::uint32_t lastUseFor(std::uint64_t Key);
  std::uint32_t classFor(std::uint64_t Key);

  std::uint64_t Rate;
  bool UseMap;
  std::uint64_t Records = 0;
  std::vector<GroupAccum> Groups;
  std::vector<LastUseAccum> LastUse;
  std::vector<ClassAccum> Classes;
  OpenIndex<std::uint32_t> SiteIndex;
  OpenIndex<std::uint64_t> LastUseIndex;
  OpenIndex<std::uint64_t> ClassIndex;
  // Ablation-only twins of the three indexes (UseMapIndex == true).
  std::unordered_map<std::uint32_t, std::uint32_t> MapSiteIndex;
  std::unordered_map<std::uint64_t, std::uint32_t> MapLastUseIndex;
  std::unordered_map<std::uint64_t, std::uint32_t> MapClassIndex;
  ExactSum TotalDragSum, ReachableSum, InUseSum;
};

/// The Roejemo-Runciman decomposition as a fold. All five space-time
/// integrals (the four phases plus the reachable total) are exact
/// 128-bit integer sums of bytes x time products, so the identity
///   lag + use + drag4 + void == reachable
/// holds *exactly*, in integer arithmetic, for sequential and merged
/// folds alike; finish() rounds each total to double once.
class LifetimeFold : public RecordFold {
public:
  void fold(const profiler::ObjectRecord &R) override;
  void merge(const RecordFold &O) override;
  std::size_t stateBytes() const override { return sizeof(*this); }

  LifetimeDecomposition finish() const;

  /// The exact integer identity check (the satellite property test).
  bool identityExact() const {
    return Lag + Use + Drag + Void == Reachable;
  }

  unsigned __int128 lagInt() const { return Lag; }
  unsigned __int128 useInt() const { return Use; }
  unsigned __int128 dragInt() const { return Drag; }
  unsigned __int128 voidInt() const { return Void; }
  unsigned __int128 reachableInt() const { return Reachable; }

private:
  unsigned __int128 Lag = 0, Use = 0, Drag = 0, Void = 0, Reachable = 0;
};

/// The Figure 2 curves as a fold: signed byte deltas accumulated
/// directly into grid buckets (difference arrays), prefix-summed at
/// finish(). Needs the grid -- i.e. the log's end time -- up front; the
/// streaming driver peeks it from the chunk-index footer. Bit-identical
/// to the materialized event sweep: an event at time t lands in the
/// first grid cell >= t, exactly the cells whose `Time <= T` scan would
/// have consumed it.
class HeapCurveFold : public RecordFold {
public:
  HeapCurveFold(ByteTime End, std::uint32_t NumSamples);

  void fold(const profiler::ObjectRecord &R) override;
  void merge(const RecordFold &O) override;
  std::size_t stateBytes() const override;

  HeapCurve finish() const;

private:
  void addInterval(std::vector<std::int64_t> &Delta, ByteTime From,
                   ByteTime To, std::int64_t Bytes);

  std::vector<ByteTime> Grid;
  std::vector<std::int64_t> ReachDelta, InUseDelta;
};

/// Streams the `jdrag export` per-object CSV straight to a file, one row
/// per fold, byte-identical to recordsCsv().writeFile() over the same
/// records in the same order. Order-sensitive by nature, so the
/// streaming driver never shards it; merge() is a hard error.
class CsvExportFold : public RecordFold {
public:
  /// Opens \p Path and writes the header row. \p Sites may still be
  /// growing while folding (the live site table of an in-progress
  /// replay); rows only describe sites already defined, which the
  /// stream's define-before-use ordering guarantees.
  CsvExportFold(const ir::Program &P, const profiler::SiteTable &Sites,
                const std::string &Path);
  ~CsvExportFold() override;

  void fold(const profiler::ObjectRecord &R) override;
  void merge(const RecordFold &O) override;
  std::size_t stateBytes() const override { return sizeof(*this); }

  /// Flushes and closes; false if any write (or the open) failed.
  bool finish();

  std::uint64_t rowCount() const { return Rows; }

private:
  const ir::Program &P;
  const profiler::SiteTable &Sites;
  std::FILE *Out = nullptr;
  bool Ok = false;
  std::uint64_t Rows = 0;
};

/// A fan-out: one record stream feeding every registered fold. This is
/// what "one shared pass feeds every analysis" means operationally --
/// report, lifetimes, curves and export all subscribe to the same
/// decode.
class FoldPipeline {
public:
  void attach(RecordFold &F) { Folds.push_back(&F); }

  void fold(const profiler::ObjectRecord &R) {
    ++Records;
    for (RecordFold *F : Folds)
      F->fold(R);
  }

  void remapSites(const std::vector<profiler::SiteId> &Map) {
    for (RecordFold *F : Folds)
      F->remapSites(Map);
  }

  std::uint64_t recordCount() const { return Records; }

  std::size_t stateBytes() const {
    std::size_t N = 0;
    for (const RecordFold *F : Folds)
      N += F->stateBytes();
    return N;
  }

private:
  std::vector<RecordFold *> Folds;
  std::uint64_t Records = 0;
};

} // namespace jdrag::analysis

#endif // JDRAG_ANALYSIS_RECORDFOLD_H
