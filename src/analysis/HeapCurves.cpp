//===- analysis/HeapCurves.cpp --------------------------------------------===//

#include "analysis/HeapCurves.h"

#include "analysis/RecordFold.h"
#include "support/Format.h"

#include <algorithm>

using namespace jdrag;
using namespace jdrag::analysis;
using profiler::ObjectRecord;
using profiler::ProfileLog;

namespace {

// The event-sweep machinery below serves figure2Csv only (it samples
// two logs onto one shared grid); single-log curves go through
// HeapCurveFold, which buildHeapCurve drives over the materialized
// records and the streaming engine drives off the decoder.

/// Signed byte deltas at event times; prefix sums give the curve.
struct Event {
  ByteTime Time;
  std::int64_t Delta;
};

std::vector<Event> buildEvents(const ProfileLog &Log, bool InUse) {
  std::vector<Event> Events;
  Events.reserve(Log.Records.size() * 2);
  for (const ObjectRecord &R : Log.Records) {
    ByteTime EndT = InUse ? R.LastUseTime : R.CollectTime;
    if (EndT <= R.AllocTime)
      continue; // never-used objects contribute nothing to in-use
    Events.push_back({R.AllocTime, static_cast<std::int64_t>(R.Bytes)});
    Events.push_back({EndT, -static_cast<std::int64_t>(R.Bytes)});
  }
  std::sort(Events.begin(), Events.end(),
            [](const Event &A, const Event &B) { return A.Time < B.Time; });
  return Events;
}

/// Samples the prefix-sum of \p Events at each grid time.
std::vector<std::uint64_t> sample(const std::vector<Event> &Events,
                                  const std::vector<ByteTime> &Grid) {
  std::vector<std::uint64_t> Out;
  Out.reserve(Grid.size());
  std::int64_t Level = 0;
  std::size_t Next = 0;
  for (ByteTime T : Grid) {
    while (Next < Events.size() && Events[Next].Time <= T)
      Level += Events[Next++].Delta;
    Out.push_back(static_cast<std::uint64_t>(std::max<std::int64_t>(0, Level)));
  }
  return Out;
}

} // namespace

std::vector<ByteTime>
jdrag::analysis::makeHeapCurveGrid(ByteTime End, std::uint32_t NumSamples) {
  std::vector<ByteTime> Grid;
  if (NumSamples == 0)
    return Grid;
  Grid.reserve(NumSamples);
  for (std::uint32_t I = 0; I != NumSamples; ++I)
    Grid.push_back(static_cast<ByteTime>(
        (static_cast<unsigned __int128>(End) * (I + 1)) / NumSamples));
  return Grid;
}

SpaceTime HeapCurve::reachableIntegral() const {
  SpaceTime Sum = 0;
  for (std::size_t I = 0; I != Times.size(); ++I) {
    ByteTime Prev = I ? Times[I - 1] : 0;
    Sum += static_cast<SpaceTime>(ReachableBytes[I]) *
           static_cast<SpaceTime>(Times[I] - Prev);
  }
  return Sum;
}

SpaceTime HeapCurve::inUseIntegral() const {
  SpaceTime Sum = 0;
  for (std::size_t I = 0; I != Times.size(); ++I) {
    ByteTime Prev = I ? Times[I - 1] : 0;
    Sum += static_cast<SpaceTime>(InUseBytes[I]) *
           static_cast<SpaceTime>(Times[I] - Prev);
  }
  return Sum;
}

std::uint64_t HeapCurve::peakReachable() const {
  std::uint64_t Peak = 0;
  for (std::uint64_t V : ReachableBytes)
    Peak = std::max(Peak, V);
  return Peak;
}

HeapCurve jdrag::analysis::buildHeapCurve(const ProfileLog &Log,
                                          std::uint32_t NumSamples) {
  HeapCurveFold Fold(Log.EndTime, NumSamples);
  for (const ObjectRecord &R : Log.Records)
    Fold.fold(R);
  return Fold.finish();
}

const std::vector<std::string> &jdrag::analysis::recordsCsvColumns() {
  static const std::vector<std::string> Columns = {
      "id",   "class", "bytes", "alloc",      "first_use",
      "last_use", "collect", "lag", "use",    "drag",
      "void", "never_used", "survived", "alloc_site", "last_use_site"};
  return Columns;
}

std::vector<std::string>
jdrag::analysis::recordCsvRow(const ir::Program &P,
                              const profiler::SiteTable &Sites,
                              const ObjectRecord &R) {
  std::string ClassName =
      R.IsArray ? ir::arrayKindName(R.AKind)
                : (R.Class.isValid() && R.Class.Index < P.Classes.size()
                       ? P.classOf(R.Class).Name
                       : "<unknown>");
  return {formatString("%llu", static_cast<unsigned long long>(R.Id)),
          ClassName,
          formatString("%u", R.Bytes),
          formatString("%llu", static_cast<unsigned long long>(R.AllocTime)),
          formatString("%llu",
                       static_cast<unsigned long long>(R.FirstUseTime)),
          formatString("%llu",
                       static_cast<unsigned long long>(R.LastUseTime)),
          formatString("%llu",
                       static_cast<unsigned long long>(R.CollectTime)),
          formatString("%llu", static_cast<unsigned long long>(R.lagTime())),
          formatString("%llu", static_cast<unsigned long long>(R.useTime())),
          formatString("%llu",
                       static_cast<unsigned long long>(R.dragTime())),
          formatString("%llu",
                       static_cast<unsigned long long>(R.voidTime())),
          R.neverUsed() ? "1" : "0",
          R.SurvivedToEnd ? "1" : "0",
          Sites.describe(P, R.AllocSite),
          R.LastUseSite != profiler::InvalidSite
              ? Sites.describe(P, R.LastUseSite)
              : ""};
}

CsvWriter jdrag::analysis::recordsCsv(const ir::Program &P,
                                      const ProfileLog &Log) {
  CsvWriter Csv(recordsCsvColumns());
  for (const ObjectRecord &R : Log.Records)
    Csv.addRow(recordCsvRow(P, Log.Sites, R));
  return Csv;
}

CsvWriter jdrag::analysis::figure2Csv(const ProfileLog &Original,
                                      const ProfileLog &Revised,
                                      std::uint32_t NumSamples) {
  ByteTime End = std::max(Original.EndTime, Revised.EndTime);
  std::vector<ByteTime> Grid = makeHeapCurveGrid(End, NumSamples);

  auto SampleLog = [&](const ProfileLog &Log, bool InUse) {
    return sample(buildEvents(Log, InUse), Grid);
  };
  auto OrigReach = SampleLog(Original, false);
  auto OrigUse = SampleLog(Original, true);
  auto RevReach = SampleLog(Revised, false);
  auto RevUse = SampleLog(Revised, true);

  CsvWriter Csv({"time_mb", "orig_reachable_mb", "orig_inuse_mb",
                 "rev_reachable_mb", "rev_inuse_mb"});
  for (std::size_t I = 0; I != Grid.size(); ++I)
    Csv.addRow({formatFixed(toMB(Grid[I]), 3),
                formatFixed(toMB(OrigReach[I]), 4),
                formatFixed(toMB(OrigUse[I]), 4),
                formatFixed(toMB(RevReach[I]), 4),
                formatFixed(toMB(RevUse[I]), 4)});
  return Csv;
}
