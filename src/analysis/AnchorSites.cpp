//===- analysis/AnchorSites.cpp -------------------------------------------===//

#include "analysis/AnchorSites.h"

using namespace jdrag;
using namespace jdrag::analysis;

std::optional<AnchorSite>
jdrag::analysis::findAnchor(const ir::Program &P,
                            const profiler::SiteTable &Sites, SiteId Site) {
  const auto &Chain = Sites.chain(Site);
  if (Chain.empty())
    return std::nullopt;
  for (std::uint32_t I = 0, E = static_cast<std::uint32_t>(Chain.size());
       I != E; ++I) {
    const ir::MethodInfo &M = P.methodOf(Chain[I].Method);
    if (!P.classOf(M.Owner).IsLibrary)
      return AnchorSite{Chain[I], I, /*InApplication=*/true};
  }
  return AnchorSite{Chain[0], 0, /*InApplication=*/false};
}
