//===- analysis/Patterns.h - Lifetime pattern classifier --------*- C++ -*-===//
//
// Part of jdrag (PLDI 2001 "Heap Profiling for Space-Efficient Java").
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's section 3.4 identifies four lifetime patterns at an anchor
/// allocation site and ties each to a rewriting strategy:
///
///   1. all drag from never-used objects        -> dead code removal
///   2. most dragged objects never-used         -> lazy allocation
///   3. most dragged objects have a large drag  -> assigning null
///   4. high variance of the drag               -> (no transformation)
///
/// We check 1 and 2 first (as the paper lists them), then distinguish 4
/// from 3 by the coefficient of variation of per-object drag: a site like
/// db's repository -- queries spread over the run -- has wildly varying
/// drags, whereas the "assign null" sites (juru's cycle arrays, euler's
/// phase arrays) drag uniformly. Thresholds are configurable; defaults
/// documented inline.
///
//===----------------------------------------------------------------------===//

#ifndef JDRAG_ANALYSIS_PATTERNS_H
#define JDRAG_ANALYSIS_PATTERNS_H

#include "analysis/DragReport.h"

namespace jdrag::analysis {

/// The paper's four lifetime patterns plus a none-of-the-above bucket.
enum class LifetimePattern : std::uint8_t {
  AllNeverUsed,  ///< pattern 1 -> dead code removal
  MostNeverUsed, ///< pattern 2 -> lazy allocation
  MostLargeDrag, ///< pattern 3 -> assigning null
  HighVariance,  ///< pattern 4 -> probably nothing helps
  Mixed,         ///< none of the patterns
};

const char *patternName(LifetimePattern P);

/// The rewriting strategy a pattern suggests (section 3.4).
enum class RewriteStrategy : std::uint8_t {
  DeadCodeRemoval,
  LazyAllocation,
  AssignNull,
  None,
};

const char *strategyName(RewriteStrategy S);

/// Classification thresholds.
struct PatternThresholds {
  /// Pattern 1: at least this fraction of the group's drag comes from
  /// never-used objects ("all of the drag at the site is due to objects
  /// that are never-used").
  double AllNeverUsedDragFraction = 0.97;
  /// Pattern 2: at least this fraction of objects are never-used.
  double MostNeverUsedObjectFraction = 0.5;
  /// Pattern 4: coefficient of variation of per-object drag above this
  /// marks a high-variance site.
  double HighVarianceCV = 1.0;
  /// Pattern 3, relative form: at least this fraction of objects have a
  /// large drag (drag time >= 1/3 of lifetime, tracked by DragReport).
  double LargeDragObjectFraction = 0.5;
  /// Pattern 3, absolute form: the site's mean per-object drag is at
  /// least this fraction of the whole program's reachable integral
  /// (euler's solver arrays drag only ~15% of their lifetime, yet each
  /// one's drag is a macroscopic slice of the program -- the paper still
  /// calls that "a large drag").
  double LargeMeanDragFractionOfReachable = 0.001;
};

/// Classifies one site group. \p ProgramReachableIntegral (byte^2)
/// enables the absolute large-drag form; pass 0 to disable it.
LifetimePattern classifyPattern(const SiteGroup &G,
                                PatternThresholds T = PatternThresholds(),
                                SpaceTime ProgramReachableIntegral = 0);

/// Maps a pattern to the transformation it suggests.
RewriteStrategy strategyFor(LifetimePattern P);

} // namespace jdrag::analysis

#endif // JDRAG_ANALYSIS_PATTERNS_H
