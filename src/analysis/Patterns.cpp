//===- analysis/Patterns.cpp ----------------------------------------------===//

#include "analysis/Patterns.h"

#include "support/ErrorHandling.h"

using namespace jdrag;
using namespace jdrag::analysis;

const char *jdrag::analysis::patternName(LifetimePattern P) {
  switch (P) {
  case LifetimePattern::AllNeverUsed:
    return "all-never-used";
  case LifetimePattern::MostNeverUsed:
    return "most-never-used";
  case LifetimePattern::MostLargeDrag:
    return "most-large-drag";
  case LifetimePattern::HighVariance:
    return "high-variance";
  case LifetimePattern::Mixed:
    return "mixed";
  }
  jdrag_unreachable("unknown pattern");
}

const char *jdrag::analysis::strategyName(RewriteStrategy S) {
  switch (S) {
  case RewriteStrategy::DeadCodeRemoval:
    return "dead code removal";
  case RewriteStrategy::LazyAllocation:
    return "lazy allocation";
  case RewriteStrategy::AssignNull:
    return "assigning null";
  case RewriteStrategy::None:
    return "none";
  }
  jdrag_unreachable("unknown strategy");
}

LifetimePattern
jdrag::analysis::classifyPattern(const SiteGroup &G, PatternThresholds T,
                                 SpaceTime ProgramReachableIntegral) {
  if (G.ObjectCount == 0 || G.TotalDrag <= 0)
    return LifetimePattern::Mixed;
  if (G.neverUsedDragFraction() >= T.AllNeverUsedDragFraction)
    return LifetimePattern::AllNeverUsed;
  if (G.neverUsedObjectFraction() >= T.MostNeverUsedObjectFraction)
    return LifetimePattern::MostNeverUsed;
  if (G.DragPerObject.coefficientOfVariation() > T.HighVarianceCV)
    return LifetimePattern::HighVariance;
  if (G.largeDragObjectFraction() >= T.LargeDragObjectFraction)
    return LifetimePattern::MostLargeDrag;
  double MeanDrag = G.TotalDrag / static_cast<double>(G.ObjectCount);
  if (ProgramReachableIntegral > 0 &&
      MeanDrag >=
          T.LargeMeanDragFractionOfReachable * ProgramReachableIntegral)
    return LifetimePattern::MostLargeDrag;
  return LifetimePattern::Mixed;
}

RewriteStrategy jdrag::analysis::strategyFor(LifetimePattern P) {
  switch (P) {
  case LifetimePattern::AllNeverUsed:
    return RewriteStrategy::DeadCodeRemoval;
  case LifetimePattern::MostNeverUsed:
    return RewriteStrategy::LazyAllocation;
  case LifetimePattern::MostLargeDrag:
    return RewriteStrategy::AssignNull;
  case LifetimePattern::HighVariance:
  case LifetimePattern::Mixed:
    return RewriteStrategy::None;
  }
  jdrag_unreachable("unknown pattern");
}
