//===- analysis/StreamingAnalysis.h - One-pass .jdev analysis ---*- C++ -*-===//
//
// Part of jdrag (PLDI 2001 "Heap Profiling for Space-Efficient Java").
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The streaming phase-2 entry point: runs every requested analysis --
/// drag report, lifetime decomposition, heap curves, per-object CSV
/// export -- in ONE pass over a `.jdev` recording, folding records the
/// moment the replay decoder emits them (analysis/RecordFold.h). Peak
/// memory is O(live objects + distinct sites + curve samples); the
/// per-object record vector the materialized path builds (~80 B per
/// object ever allocated) is never allocated.
///
/// With Jobs > 1 the pass shards across the recording's chunk index
/// (profiler/ParallelReplay.h): each decode worker folds its records
/// into shard-local partials, merged deterministically afterwards.
/// Every result is bit-identical to the materialized pass -- ExactSum
/// accumulators make floating-point summation order-free -- which the
/// `--materialize` oracle path and the report_smoke byte-diff enforce.
///
//===----------------------------------------------------------------------===//

#ifndef JDRAG_ANALYSIS_STREAMINGANALYSIS_H
#define JDRAG_ANALYSIS_STREAMINGANALYSIS_H

#include "analysis/DragReport.h"
#include "analysis/HeapCurves.h"
#include "analysis/LagDragVoid.h"
#include "profiler/DragProfiler.h"

#include <memory>
#include <string>

namespace jdrag::analysis {

/// What analyzeEventStream should compute in its single pass.
struct StreamAnalysisOptions {
  profiler::ProfilerConfig Config;
  /// Decode workers. > 1 shards the pass over the chunk index (curves,
  /// report and lifetimes merge exactly); an export keeps the pass
  /// sequential regardless, because the CSV is row-order-sensitive.
  unsigned Jobs = 1;
  bool WantReport = true;
  bool WantLifetimes = false;
  /// Grid size for the Figure 2 curves; 0 = no curve. Needs the stream
  /// end time up front, peeked from the chunk-index footer (or a
  /// one-pass index rebuild for footerless streams).
  std::uint32_t CurveSamples = 0;
  /// Non-empty = stream the per-object CSV to this path as records fold.
  std::string ExportCsvPath;
  /// Bench ablation: aggregate through unordered_map instead of the
  /// open-addressed index. Never set by production callers.
  bool UseMapIndex = false;
  /// Skip streaming entirely and run the materialized pipeline (replay
  /// into ProfileLog::Records, analyze the vector). The CLI's
  /// `--materialize` bit-identity oracle.
  bool ForceMaterialize = false;
};

/// Everything the pass produced. Report (when requested) references
/// *Shell, so keep the result object alive as long as the report.
struct StreamAnalysisResult {
  /// The record-free log shell: sites, GC samples, end time, sampling
  /// params, health. Records is empty unless the pass fell back to the
  /// materialized path (Materialized below).
  std::unique_ptr<profiler::ProfileLog> Shell;
  std::unique_ptr<DragReport> Report; ///< set when WantReport
  LifetimeDecomposition Lifetimes;    ///< set when WantLifetimes
  HeapCurve Curve;                    ///< set when CurveSamples > 0
  std::uint64_t RecordsFolded = 0;
  std::uint64_t ExportRows = 0;
  /// Resident high-water of the analysis state: fold bytes plus (on the
  /// sequential path) the trailer-table peak. The O(sites) claim made
  /// measurable (BENCH_9).
  std::size_t FoldStateBytes = 0;
  std::size_t PeakTrailers = 0;
  bool Sharded = false;      ///< the sharded fold path actually ran
  bool Materialized = false; ///< fell back to the materialized pass
};

/// Peeks the recording's end time (the Terminate event's byte-clock
/// time) without replaying it: reads the chunk-index footer from the
/// file tail, or rebuilds the index with one record-free pass for
/// footerless streams. Footer claims are unverified -- callers that act
/// on them must cross-check against the replay's observed end time.
bool peekStreamEndTime(const std::string &Path, ByteTime &End);

/// Runs the requested analyses in one streaming pass over the `.jdev`
/// recording at \p Path. Falls back to the materialized pipeline (same
/// results, O(records) memory) when streaming preconditions fail --
/// e.g. no end time is peekable for a requested curve, or a footer's
/// claimed end time disagrees with the decode. Returns false with
/// \p Err on a malformed recording or export I/O failure.
bool analyzeEventStream(const std::string &Path, const ir::Program &P,
                        const StreamAnalysisOptions &O,
                        StreamAnalysisResult &Out, std::string *Err = nullptr);

} // namespace jdrag::analysis

#endif // JDRAG_ANALYSIS_STREAMINGANALYSIS_H
