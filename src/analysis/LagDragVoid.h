//===- analysis/LagDragVoid.h - Roejemo-Runciman decomposition -*- C++ -*-===//
//
// Part of jdrag (PLDI 2001 "Heap Profiling for Space-Efficient Java").
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's drag model descends from Roejemo & Runciman's "Lag, drag,
/// void and use" (ICFP 1996), which splits every object's lifetime into
/// four phases: *lag* (creation to first use), *use* (first to last use),
/// *drag* (last use to unreachable) and *void* (the whole lifetime of an
/// object that is never used). This module computes the four space-time
/// integrals from a profile log. Identity:
///
///   lag + use + drag4 + void == reachable integral
///
/// where drag4 counts only used objects (the paper's 2-way split folds
/// void into drag: drag2 = drag4 + void).
///
//===----------------------------------------------------------------------===//

#ifndef JDRAG_ANALYSIS_LAGDRAGVOID_H
#define JDRAG_ANALYSIS_LAGDRAGVOID_H

#include "profiler/ProfileLog.h"

#include <string>

namespace jdrag::analysis {

/// The four space-time integrals, in byte^2.
struct LifetimeDecomposition {
  SpaceTime Lag = 0;
  SpaceTime Use = 0;
  SpaceTime Drag = 0; ///< used objects only (drag4)
  SpaceTime Void = 0; ///< never-used objects' whole lifetimes

  SpaceTime total() const { return Lag + Use + Drag + Void; }

  double lagFraction() const { return total() > 0 ? Lag / total() : 0; }
  double useFraction() const { return total() > 0 ? Use / total() : 0; }
  double dragFraction() const { return total() > 0 ? Drag / total() : 0; }
  double voidFraction() const { return total() > 0 ? Void / total() : 0; }
};

/// Computes the decomposition over all records of \p Log.
LifetimeDecomposition decomposeLifetimes(const profiler::ProfileLog &Log);

/// One-line rendering, e.g. "lag 2.1% use 30.4% drag 55.0% void 12.5%".
std::string renderDecomposition(const LifetimeDecomposition &D);

} // namespace jdrag::analysis

#endif // JDRAG_ANALYSIS_LAGDRAGVOID_H
