//===- analysis/AnchorSites.h - Anchor-site walk ----------------*- C++ -*-===//
//
// Part of jdrag (PLDI 2001 "Heap Profiling for Space-Efficient Java").
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 3.4: "We choose a nested allocation site with high drag. The
/// bottom level is likely to be an allocation site in JDK or other
/// library code ... We follow the call chain upwards looking for the
/// first place in application code where a reference to the allocated
/// object ... is stored in a variable. We call this place the anchor
/// allocation site."
///
/// We approximate the anchor as the innermost frame of the nested chain
/// whose method belongs to a non-library class; if the whole chain is
/// library code, the innermost frame is used.
///
//===----------------------------------------------------------------------===//

#ifndef JDRAG_ANALYSIS_ANCHORSITES_H
#define JDRAG_ANALYSIS_ANCHORSITES_H

#include "analysis/DragReport.h"

#include <optional>

namespace jdrag::analysis {

/// The anchor frame of a nested allocation site.
struct AnchorSite {
  profiler::SiteFrame Frame;   ///< the application-code frame
  std::uint32_t ChainDepth = 0;///< its index in the nested chain
  bool InApplication = false;  ///< false if the whole chain is library
};

/// Walks \p Site's chain to its anchor. Returns nullopt for the "<vm>"
/// site (empty chain).
std::optional<AnchorSite> findAnchor(const ir::Program &P,
                                     const profiler::SiteTable &Sites,
                                     SiteId Site);

} // namespace jdrag::analysis

#endif // JDRAG_ANALYSIS_ANCHORSITES_H
