//===- analysis/LagDragVoid.cpp -------------------------------------------===//

#include "analysis/LagDragVoid.h"

#include "support/Format.h"

using namespace jdrag;
using namespace jdrag::analysis;

LifetimeDecomposition
jdrag::analysis::decomposeLifetimes(const profiler::ProfileLog &Log) {
  LifetimeDecomposition D;
  for (const profiler::ObjectRecord &R : Log.Records) {
    SpaceTime B = static_cast<SpaceTime>(R.Bytes);
    if (R.neverUsed()) {
      D.Void += B * static_cast<SpaceTime>(R.voidTime());
      continue;
    }
    D.Lag += B * static_cast<SpaceTime>(R.lagTime());
    D.Use += B * static_cast<SpaceTime>(R.useTime());
    D.Drag += B * static_cast<SpaceTime>(R.dragTime());
  }
  return D;
}

std::string
jdrag::analysis::renderDecomposition(const LifetimeDecomposition &D) {
  return formatString(
      "lag %.4f MB^2 (%.1f%%)  use %.4f MB^2 (%.1f%%)  drag %.4f MB^2 "
      "(%.1f%%)  void %.4f MB^2 (%.1f%%)",
      toMB2(D.Lag), D.lagFraction() * 100, toMB2(D.Use),
      D.useFraction() * 100, toMB2(D.Drag), D.dragFraction() * 100,
      toMB2(D.Void), D.voidFraction() * 100);
}
