//===- analysis/LagDragVoid.cpp -------------------------------------------===//

#include "analysis/LagDragVoid.h"

#include "analysis/RecordFold.h"
#include "support/Format.h"

using namespace jdrag;
using namespace jdrag::analysis;

LifetimeDecomposition
jdrag::analysis::decomposeLifetimes(const profiler::ProfileLog &Log) {
  // One fold over the records -- the same LifetimeFold the streaming
  // engine drives off the decoder, so both paths agree bit-for-bit and
  // the R&R identity holds exactly (the fold sums in 128-bit integers).
  LifetimeFold Fold;
  for (const profiler::ObjectRecord &R : Log.Records)
    Fold.fold(R);
  return Fold.finish();
}

std::string
jdrag::analysis::renderDecomposition(const LifetimeDecomposition &D) {
  return formatString(
      "lag %.4f MB^2 (%.1f%%)  use %.4f MB^2 (%.1f%%)  drag %.4f MB^2 "
      "(%.1f%%)  void %.4f MB^2 (%.1f%%)",
      toMB2(D.Lag), D.lagFraction() * 100, toMB2(D.Use),
      D.useFraction() * 100, toMB2(D.Drag), D.dragFraction() * 100,
      toMB2(D.Void), D.voidFraction() * 100);
}
