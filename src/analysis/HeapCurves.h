//===- analysis/HeapCurves.h - Figure 2 reachable/in-use curves -*- C++ -*-===//
//
// Part of jdrag (PLDI 2001 "Heap Profiling for Space-Efficient Java").
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reconstructs the paper's Figure 2 curves from a profile log: the
/// reachable heap size (objects between allocation and collection) and
/// the in-use heap size (objects between allocation and last use) over
/// allocation time. Curves are exact event sweeps sampled on a uniform
/// grid; their discrete integrals converge to the exact space-time
/// integrals reported in Tables 2 and 3.
///
//===----------------------------------------------------------------------===//

#ifndef JDRAG_ANALYSIS_HEAPCURVES_H
#define JDRAG_ANALYSIS_HEAPCURVES_H

#include "ir/Program.h"
#include "profiler/ProfileLog.h"
#include "support/Csv.h"

#include <string>
#include <vector>

namespace jdrag::analysis {

/// Sampled reachable/in-use sizes over the byte clock.
struct HeapCurve {
  std::vector<ByteTime> Times;
  std::vector<std::uint64_t> ReachableBytes;
  std::vector<std::uint64_t> InUseBytes;

  std::size_t size() const { return Times.size(); }

  /// Trapezoid-free discrete integral of the reachable curve (byte^2):
  /// sum of value x step. Approximates ProfileLog::reachableIntegral().
  SpaceTime reachableIntegral() const;
  SpaceTime inUseIntegral() const;

  /// Peak reachable size (bytes).
  std::uint64_t peakReachable() const;
};

/// The uniform sample grid over [0, End]: NumSamples times, the i-th at
/// End * (i+1) / NumSamples. Shared by the materialized event sweep and
/// the streaming HeapCurveFold so both land events in identical cells.
std::vector<ByteTime> makeHeapCurveGrid(ByteTime End,
                                        std::uint32_t NumSamples);

/// Builds the curve from \p Log with \p NumSamples uniform samples over
/// [0, Log.EndTime]. Implemented on HeapCurveFold (one pass over the
/// records, O(NumSamples) state).
HeapCurve buildHeapCurve(const profiler::ProfileLog &Log,
                         std::uint32_t NumSamples = 256);

/// Column headers of the per-object record CSV.
const std::vector<std::string> &recordsCsvColumns();

/// One record's CSV row, in recordsCsvColumns() order. Shared by the
/// materialized recordsCsv() and the streaming CsvExportFold so their
/// output is byte-identical.
std::vector<std::string> recordCsvRow(const ir::Program &P,
                                      const profiler::SiteTable &Sites,
                                      const profiler::ObjectRecord &R);

/// Dumps every object record as CSV (one row per object: class, bytes,
/// alloc/first-use/last-use/collect times, lag/use/drag/void, sites) for
/// external plotting or spreadsheet analysis.
CsvWriter recordsCsv(const ir::Program &P, const profiler::ProfileLog &Log);

/// Emits a Figure 2 panel for one benchmark: columns
/// time_mb, orig_reachable_mb, orig_inuse_mb, rev_reachable_mb,
/// rev_inuse_mb. The two logs may have different end times; the grid
/// covers the longer one (shorter run contributes zeros past its end,
/// matching the paper's "occur earlier in the graph" effect).
CsvWriter figure2Csv(const profiler::ProfileLog &Original,
                     const profiler::ProfileLog &Revised,
                     std::uint32_t NumSamples = 256);

} // namespace jdrag::analysis

#endif // JDRAG_ANALYSIS_HEAPCURVES_H
