//===- analysis/Savings.h - Table 2/3 savings computation -------*- C++ -*-===//
//
// Part of jdrag (PLDI 2001 "Heap Profiling for Space-Efficient Java").
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Computes the paper's Table 2/3 quantities from an original and a
/// revised profile log. Following Agesen et al., the *integrals* are
/// space-time products (area under the reachable / in-use curves):
///
///   original drag      = orig reachable - orig in-use integral
///   drag reduction     = orig reachable - reduced reachable integral
///   drag saving ratio  = drag reduction / original drag
///   space saving ratio = 1 - reduced reachable / orig reachable
///
/// The drag saving ratio can exceed 100% (mc: 168.82%) when the revised
/// reachable integral falls below the original in-use integral, because
/// eliminated allocations remove in-use space too.
///
//===----------------------------------------------------------------------===//

#ifndef JDRAG_ANALYSIS_SAVINGS_H
#define JDRAG_ANALYSIS_SAVINGS_H

#include "profiler/ProfileLog.h"

namespace jdrag::analysis {

/// One benchmark row of Table 2 (all integrals in MB^2).
struct SavingsRow {
  double OriginalReachableMB2 = 0;
  double OriginalInUseMB2 = 0;
  double ReducedReachableMB2 = 0;
  double ReducedInUseMB2 = 0;

  double originalDragMB2() const {
    return OriginalReachableMB2 - OriginalInUseMB2;
  }
  double dragReductionMB2() const {
    return OriginalReachableMB2 - ReducedReachableMB2;
  }
  /// Drag saving ratio in [.., can exceed 1]; 0 when there was no drag.
  double dragSavingRatio() const {
    double Drag = originalDragMB2();
    return Drag > 0 ? dragReductionMB2() / Drag : 0.0;
  }
  /// Average space saving (ratio of integral reduction).
  double spaceSavingRatio() const {
    return OriginalReachableMB2 > 0
               ? 1.0 - ReducedReachableMB2 / OriginalReachableMB2
               : 0.0;
  }
};

/// Computes the savings row from two logs of the same workload.
SavingsRow computeSavings(const profiler::ProfileLog &Original,
                          const profiler::ProfileLog &Revised);

} // namespace jdrag::analysis

#endif // JDRAG_ANALYSIS_SAVINGS_H
