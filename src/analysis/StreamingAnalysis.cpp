//===- analysis/StreamingAnalysis.cpp -------------------------------------===//

#include "analysis/StreamingAnalysis.h"

#include "analysis/RecordFold.h"
#include "profiler/ParallelReplay.h"

#include <algorithm>
#include <fstream>
#include <optional>

using namespace jdrag;
using namespace jdrag::analysis;
using namespace jdrag::profiler;

namespace {

/// Reads the last (up to) \p MaxBytes bytes of \p Path.
bool readTail(const std::string &Path, std::size_t MaxBytes,
              std::vector<std::byte> &Out) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return false;
  In.seekg(0, std::ios::end);
  std::streamoff End = In.tellg();
  if (End <= 0)
    return false;
  std::size_t N = std::min<std::size_t>(MaxBytes,
                                        static_cast<std::size_t>(End));
  In.seekg(End - static_cast<std::streamoff>(N));
  Out.resize(N);
  In.read(reinterpret_cast<char *>(Out.data()), static_cast<std::streamsize>(N));
  return static_cast<bool>(In);
}

bool readWhole(const std::string &Path, std::vector<std::byte> &Out) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return false;
  In.seekg(0, std::ios::end);
  std::streamoff End = In.tellg();
  if (End < 0)
    return false;
  In.seekg(0, std::ios::beg);
  Out.resize(static_cast<std::size_t>(End));
  if (End > 0)
    In.read(reinterpret_cast<char *>(Out.data()), End);
  return static_cast<bool>(In);
}

ByteTime maxLastTime(const ChunkIndex &Idx) {
  ByteTime End = 0;
  for (const ChunkIndexEntry &En : Idx.Entries)
    End = std::max(End, En.LastTime);
  return End;
}

/// The materialized fallback: identical results via the O(records)
/// pipeline. Also the error path -- a damaged recording gets the
/// canonical sequential-replay error message.
bool analyzeMaterialized(const std::string &Path, const ir::Program &P,
                         const StreamAnalysisOptions &O,
                         StreamAnalysisResult &Out, std::string *Err) {
  auto Log = std::make_unique<ProfileLog>();
  if (!replayProfileParallel(Path, P, O.Config, O.Jobs, *Log, Err))
    return false;
  Out.Materialized = true;
  Out.Sharded = false;
  Out.RecordsFolded = Log->Records.size();
  Out.FoldStateBytes = Log->Records.size() * sizeof(ObjectRecord);
  if (O.WantLifetimes)
    Out.Lifetimes = decomposeLifetimes(*Log);
  if (O.CurveSamples)
    Out.Curve = buildHeapCurve(*Log, O.CurveSamples);
  if (!O.ExportCsvPath.empty()) {
    if (!recordsCsv(P, *Log).writeFile(O.ExportCsvPath)) {
      if (Err)
        *Err = "cannot write " + O.ExportCsvPath;
      return false;
    }
    Out.ExportRows = Log->Records.size();
  }
  Out.Shell = std::move(Log);
  if (O.WantReport)
    Out.Report = std::make_unique<DragReport>(P, *Out.Shell);
  return true;
}

/// The per-shard fold sets and ShardFoldSink gluing the sharded replay
/// to the fold engine. One set per shard; boundary-crossing records
/// (delivered single-threaded by the merge step) fold into set 0, which
/// is sound because fold-then-merge is exactly order-free.
class ShardedFolds : public ShardFoldSink {
public:
  ShardedFolds(const StreamAnalysisOptions &O, std::uint64_t SampleRate,
               ByteTime CurveEnd)
      : O(O), SampleRate(SampleRate), CurveEnd(CurveEnd) {}

  void beginAttempt(unsigned ShardCount) override {
    LastShardCount = ShardCount;
    Sets.clear();
    Sets.resize(ShardCount);
    for (Set &S : Sets) {
      if (O.WantReport)
        S.SG.emplace(SampleRate, 0, O.UseMapIndex);
      if (O.WantLifetimes)
        S.LF.emplace();
      if (O.CurveSamples)
        S.CF.emplace(CurveEnd, O.CurveSamples);
    }
  }

  void onShardRecord(unsigned Shard, const ObjectRecord &R) override {
    foldInto(Sets[Shard], R);
  }

  void onMergedRecord(const ObjectRecord &R) override {
    foldInto(Sets[0], R);
  }

  /// Merges shards 1..N-1 into shard 0 in shard order (any fixed order
  /// gives the same bits) and remaps stream site ids to log-local ids.
  void mergeAndRemap(const std::vector<SiteId> &SiteMap) {
    for (std::size_t K = 1; K < Sets.size(); ++K) {
      if (O.WantReport)
        Sets[0].SG->merge(*Sets[K].SG);
      if (O.WantLifetimes)
        Sets[0].LF->merge(*Sets[K].LF);
      if (O.CurveSamples)
        Sets[0].CF->merge(*Sets[K].CF);
    }
    if (O.WantReport)
      Sets[0].SG->remapSites(SiteMap);
  }

  SiteGroupFold *report() { return Sets[0].SG ? &*Sets[0].SG : nullptr; }
  LifetimeFold *lifetimes() { return Sets[0].LF ? &*Sets[0].LF : nullptr; }
  HeapCurveFold *curve() { return Sets[0].CF ? &*Sets[0].CF : nullptr; }

  std::uint64_t recordCount() const {
    std::uint64_t N = 0;
    for (const Set &S : Sets)
      N += S.Records;
    return N;
  }

  std::size_t stateBytes() const {
    std::size_t N = 0;
    for (const Set &S : Sets) {
      if (S.SG)
        N += S.SG->stateBytes();
      if (S.LF)
        N += S.LF->stateBytes();
      if (S.CF)
        N += S.CF->stateBytes();
    }
    return N;
  }

  unsigned lastShardCount() const { return LastShardCount; }

private:
  struct Set {
    std::optional<SiteGroupFold> SG;
    std::optional<LifetimeFold> LF;
    std::optional<HeapCurveFold> CF;
    std::uint64_t Records = 0;
  };

  void foldInto(Set &S, const ObjectRecord &R) {
    ++S.Records;
    if (S.SG)
      S.SG->fold(R);
    if (S.LF)
      S.LF->fold(R);
    if (S.CF)
      S.CF->fold(R);
  }

  const StreamAnalysisOptions &O;
  std::uint64_t SampleRate;
  ByteTime CurveEnd;
  std::vector<Set> Sets;
  unsigned LastShardCount = 0;
};

} // namespace

bool jdrag::analysis::peekStreamEndTime(const std::string &Path,
                                        ByteTime &End) {
  // Fast path: the footer is at the tail, its size in its last 8 bytes.
  // 1 MB of tail covers ~20k chunk entries -- far beyond any recording
  // the tests or benchmarks produce; bigger footers fall through to the
  // rebuild below.
  std::vector<std::byte> Tail;
  if (readTail(Path, std::size_t(1) << 20, Tail)) {
    ChunkIndex Idx;
    if (peekChunkIndexFooterTail(std::span<const std::byte>(Tail), Idx) &&
        !Idx.Entries.empty()) {
      End = maxLastTime(Idx);
      return true;
    }
  }
  // Footerless (v2/v3, or an interrupted v4/v5/v6 producer): one strict
  // record-free pass rebuilds the index. O(chunks) state, and the bytes
  // are released before the replay proper starts.
  StreamHeaderInfo Info;
  if (!readStreamHeader(Path, Info))
    return false;
  std::vector<std::byte> Bytes;
  if (!readWhole(Path, Bytes))
    return false;
  std::size_t HeaderBytes = streamHeaderBytes(Info.Format);
  if (Bytes.size() < HeaderBytes)
    return false;
  ChunkIndex Idx;
  if (!rebuildChunkIndex(std::span<const std::byte>(Bytes.data() + HeaderBytes,
                                                    Bytes.size() - HeaderBytes),
                         Info.Format, Idx))
    return false;
  End = maxLastTime(Idx);
  return true;
}

bool jdrag::analysis::analyzeEventStream(const std::string &Path,
                                         const ir::Program &P,
                                         const StreamAnalysisOptions &O,
                                         StreamAnalysisResult &Out,
                                         std::string *Err) {
  if (O.ForceMaterialize)
    return analyzeMaterialized(Path, P, O, Out, Err);

  StreamHeaderInfo Info;
  if (!readStreamHeader(Path, Info, Err))
    return false;
  std::uint64_t SampleRate = Info.Sampling.SampleBytes;

  // The curve fold needs its grid -- i.e. the end time -- before the
  // first record arrives. No peekable end time (torn tail, rebuild
  // refused) means the stream is damaged or exotic; the materialized
  // path owns both the fallback result and the canonical error.
  ByteTime PeekEnd = 0;
  if (O.CurveSamples && !peekStreamEndTime(Path, PeekEnd))
    return analyzeMaterialized(Path, P, O, Out, Err);

  // The CSV export writes rows in record order, so it pins the pass to
  // one decode thread; everything else shards.
  if (O.Jobs > 1 && O.ExportCsvPath.empty()) {
    ShardedFolds Folds(O, SampleRate, PeekEnd);
    auto Shell = std::make_unique<ProfileLog>();
    std::vector<SiteId> SiteMap;
    if (!replayProfileParallelFold(Path, P, O.Config, O.Jobs, Folds, *Shell,
                                   SiteMap, Err))
      return false;
    // A footer may lie about times; the decode is ground truth. A grid
    // built from a lie would misplace events, so recompute materialized.
    if (O.CurveSamples && Shell->EndTime != PeekEnd)
      return analyzeMaterialized(Path, P, O, Out, Err);
    Folds.mergeAndRemap(SiteMap);
    Out.Sharded = Folds.lastShardCount() > 1;
    Out.RecordsFolded = Folds.recordCount();
    Out.FoldStateBytes = Folds.stateBytes();
    if (LifetimeFold *LF = Folds.lifetimes())
      Out.Lifetimes = LF->finish();
    if (HeapCurveFold *CF = Folds.curve())
      Out.Curve = CF->finish();
    Out.Shell = std::move(Shell);
    if (SiteGroupFold *SG = Folds.report())
      Out.Report = std::make_unique<DragReport>(
          P, *Out.Shell, SG->finish(P, Out.Shell->Sites));
    return true;
  }

  // Sequential: one DragProfiler decode with a record sink fanning out
  // to every requested fold. The profiler is driven directly (rather
  // than through replayProfileTo) so the export fold can reference the
  // live site table while rows stream out.
  DragProfiler Prof(P, O.Config);
  std::optional<SiteGroupFold> SG;
  std::optional<LifetimeFold> LF;
  std::optional<HeapCurveFold> CF;
  std::optional<CsvExportFold> EX;
  FoldPipeline Pipe;
  if (O.WantReport) {
    SG.emplace(SampleRate, 0, O.UseMapIndex);
    Pipe.attach(*SG);
  }
  if (O.WantLifetimes) {
    LF.emplace();
    Pipe.attach(*LF);
  }
  if (O.CurveSamples) {
    CF.emplace(PeekEnd, O.CurveSamples);
    Pipe.attach(*CF);
  }
  if (!O.ExportCsvPath.empty()) {
    EX.emplace(P, Prof.log().Sites, O.ExportCsvPath);
    Pipe.attach(*EX);
  }

  class PipeSink : public RecordSink {
  public:
    explicit PipeSink(FoldPipeline &Pipe) : Pipe(Pipe) {}
    void onRecord(const ObjectRecord &R) override { Pipe.fold(R); }

  private:
    FoldPipeline &Pipe;
  } Sink(Pipe);
  Prof.setRecordSink(&Sink);

  if (!replayFile(Path, Prof, Err, &Info))
    return false;
  Out.PeakTrailers = Prof.peakLiveTrailers();
  auto Shell = std::make_unique<ProfileLog>(Prof.takeLog());
  Shell->SampleRate = Info.Sampling.SampleBytes;
  Shell->SampleSeed = Info.Sampling.enabled() ? Info.Sampling.SampleSeed : 0;
  Shell->Compressed = Info.Compressed;

  if (O.CurveSamples && Shell->EndTime != PeekEnd)
    return analyzeMaterialized(Path, P, O, Out, Err); // lying footer

  Out.Sharded = false;
  Out.RecordsFolded = Pipe.recordCount();
  Out.FoldStateBytes = Pipe.stateBytes();
  if (LF)
    Out.Lifetimes = LF->finish();
  if (CF)
    Out.Curve = CF->finish();
  if (EX) {
    if (!EX->finish()) {
      if (Err)
        *Err = "cannot write " + O.ExportCsvPath;
      return false;
    }
    Out.ExportRows = EX->rowCount();
  }
  Out.Shell = std::move(Shell);
  if (SG)
    Out.Report = std::make_unique<DragReport>(P, *Out.Shell,
                                              SG->finish(P, Out.Shell->Sites));
  return true;
}
