//===- analysis/Savings.cpp -----------------------------------------------===//

#include "analysis/Savings.h"

using namespace jdrag;
using namespace jdrag::analysis;

SavingsRow jdrag::analysis::computeSavings(const profiler::ProfileLog &Original,
                                           const profiler::ProfileLog &Revised) {
  SavingsRow Row;
  Row.OriginalReachableMB2 = toMB2(Original.reachableIntegral());
  Row.OriginalInUseMB2 = toMB2(Original.inUseIntegral());
  Row.ReducedReachableMB2 = toMB2(Revised.reachableIntegral());
  Row.ReducedInUseMB2 = toMB2(Revised.inUseIntegral());
  return Row;
}
