//===- analysis/RecordFold.cpp --------------------------------------------===//

#include "analysis/RecordFold.h"

#include "support/ErrorHandling.h"

#include <algorithm>
#include <map>

using namespace jdrag;
using namespace jdrag::analysis;
using profiler::ObjectRecord;

RecordFold::~RecordFold() = default;

void RecordFold::remapSites(const std::vector<profiler::SiteId> &) {}

//===----------------------------------------------------------------------===//
// SiteGroupFold
//===----------------------------------------------------------------------===//

SiteGroupFold::SiteGroupFold(std::uint64_t SampleRate,
                             std::uint32_t SiteCountHint, bool UseMapIndex)
    : Rate(SampleRate), UseMap(UseMapIndex), SiteIndex(SiteCountHint),
      LastUseIndex(SiteCountHint * 2), ClassIndex(64) {
  Groups.reserve(SiteCountHint);
  LastUse.reserve(SiteCountHint * 2);
  Classes.reserve(64);
}

std::uint32_t SiteGroupFold::groupFor(SiteId Site) {
  std::uint32_t Next = static_cast<std::uint32_t>(Groups.size());
  std::uint32_t GI =
      UseMap ? MapSiteIndex.try_emplace(Site, Next).first->second
             : SiteIndex.lookupOrInsert(Site, Next);
  if (GI == Next) {
    Groups.emplace_back();
    Groups.back().Site = Site;
  }
  return GI;
}

std::uint32_t SiteGroupFold::lastUseFor(std::uint64_t Key) {
  std::uint32_t Next = static_cast<std::uint32_t>(LastUse.size());
  std::uint32_t LI =
      UseMap ? MapLastUseIndex.try_emplace(Key, Next).first->second
             : LastUseIndex.lookupOrInsert(Key, Next);
  if (LI == Next) {
    LastUse.emplace_back();
    LastUse.back().Key = Key;
  }
  return LI;
}

std::uint32_t SiteGroupFold::classFor(std::uint64_t Key) {
  std::uint32_t Next = static_cast<std::uint32_t>(Classes.size());
  std::uint32_t CI =
      UseMap ? MapClassIndex.try_emplace(Key, Next).first->second
             : ClassIndex.lookupOrInsert(Key, Next);
  if (CI == Next) {
    Classes.emplace_back();
    Classes.back().Key = Key;
  }
  return CI;
}

void SiteGroupFold::fold(const ObjectRecord &R) {
  ++Records;
  std::uint32_t GI = groupFor(R.AllocSite);
  GroupAccum &G = Groups[GI];

  double DragRaw = R.drag();
  double Drag = DragRaw;
  double Bytes = static_cast<double>(R.Bytes);
  double DragTime = static_cast<double>(R.dragTime());
  double LifeTime = static_cast<double>(R.lifeTime());
  double InUseTime = static_cast<double>(R.inUseTime());

  ++G.ObjectCount;
  G.TotalBytes += R.Bytes;
  if (Rate != 0) {
    // Sampled logs hold a size-weighted Bernoulli subset of the
    // allocations; every space-time sum is scaled by the record's
    // inverse inclusion probability so the report estimates the exact
    // profile (Horvitz-Thompson).
    double Prob = profiler::sampleProbability(R.Bytes, Rate);
    double W = 1.0 / Prob;
    Drag = DragRaw * W;
    G.EstObjects.add(W);
    G.EstBytes.add(W * Bytes);
    G.TotalDrag.add(Drag);
    G.DragVariance.add(profiler::sampleVarianceTerm(DragRaw, Prob));
    TotalDragSum.add(Drag);
    ReachableSum.add(W * Bytes * LifeTime);
    InUseSum.add(W * Bytes * InUseTime);
  } else {
    // Exact logs: W == 1.0 bit-exactly, which makes five of the
    // weighted sums above recoverable from cheaper state at finish()
    // -- EstObjects == ObjectCount, EstBytes == TotalBytes, TotalDrag
    // == DragSum, DragVariance == 0, and the program-wide drag total
    // is the (exactly associative) sum of the group drag sums -- so
    // the hot path skips those ExactSum adds entirely.
    ReachableSum.add(Bytes * LifeTime);
    InUseSum.add(Bytes * InUseTime);
  }
  // Per-object distributions describe the sampled records themselves,
  // not the population, so they stay unweighted.
  G.DragSum.add(DragRaw);
  G.DragSq.add(DragRaw * DragRaw);
  G.DragTimeSum.add(DragTime);
  G.DragTimeSq.add(DragTime * DragTime);
  G.LifeSum.add(LifeTime);
  G.LifeSq.add(LifeTime * LifeTime);
  G.DragMin = std::min(G.DragMin, DragRaw);
  G.DragMax = std::max(G.DragMax, DragRaw);
  G.DragTimeMin = std::min(G.DragTimeMin, DragTime);
  G.DragTimeMax = std::max(G.DragTimeMax, DragTime);
  G.LifeMin = std::min(G.LifeMin, LifeTime);
  G.LifeMax = std::max(G.LifeMax, LifeTime);
  if (R.neverUsed()) {
    ++G.NeverUsedCount;
    G.NeverUsedDrag.add(Drag);
  }
  if (R.lifeTime() > 0 && DragTime >= LifeTime / 3.0)
    ++G.LargeDragCount;
  ++G.Histo[SiteGroup::histoBucket(R.dragTime())];

  std::uint64_t LUKey =
      (static_cast<std::uint64_t>(GI) << 32) |
      (R.neverUsed() ? profiler::InvalidSite : R.LastUseSite);
  LastUse[lastUseFor(LUKey)].Drag.add(Drag);

  std::uint64_t CKey =
      R.IsArray ? (1ull << 40) + static_cast<std::uint64_t>(R.AKind)
                : R.Class.Index;
  ClassAccum &C = Classes[classFor(CKey)];
  if (C.ObjectCount == 0) {
    C.Class = R.Class;
    C.AKind = R.AKind;
    C.IsArray = R.IsArray;
  }
  ++C.ObjectCount;
  C.TotalBytes += R.Bytes;
  C.TotalDrag.add(Drag);
  if (R.neverUsed())
    ++C.NeverUsedCount;
}

void SiteGroupFold::merge(const RecordFold &Other) {
  const auto &O = static_cast<const SiteGroupFold &>(Other);
  Records += O.Records;

  // Site groups: each field is either an integer sum, a min/max, or an
  // ExactSum -- all order-free, so merged == sequential bit-for-bit.
  std::vector<std::uint32_t> GroupMap(O.Groups.size());
  for (std::size_t J = 0; J != O.Groups.size(); ++J) {
    const GroupAccum &From = O.Groups[J];
    std::uint32_t GI = groupFor(From.Site);
    GroupMap[J] = GI;
    GroupAccum &G = Groups[GI];
    G.ObjectCount += From.ObjectCount;
    G.NeverUsedCount += From.NeverUsedCount;
    G.TotalBytes += From.TotalBytes;
    G.LargeDragCount += From.LargeDragCount;
    G.EstObjects.add(From.EstObjects);
    G.EstBytes.add(From.EstBytes);
    G.TotalDrag.add(From.TotalDrag);
    G.DragVariance.add(From.DragVariance);
    G.NeverUsedDrag.add(From.NeverUsedDrag);
    G.DragSum.add(From.DragSum);
    G.DragSq.add(From.DragSq);
    G.DragTimeSum.add(From.DragTimeSum);
    G.DragTimeSq.add(From.DragTimeSq);
    G.LifeSum.add(From.LifeSum);
    G.LifeSq.add(From.LifeSq);
    G.DragMin = std::min(G.DragMin, From.DragMin);
    G.DragMax = std::max(G.DragMax, From.DragMax);
    G.DragTimeMin = std::min(G.DragTimeMin, From.DragTimeMin);
    G.DragTimeMax = std::max(G.DragTimeMax, From.DragTimeMax);
    G.LifeMin = std::min(G.LifeMin, From.LifeMin);
    G.LifeMax = std::max(G.LifeMax, From.LifeMax);
    for (std::size_t B = 0; B != G.Histo.size(); ++B)
      G.Histo[B] += From.Histo[B];
  }

  // Last-use cells carry the *other* fold's group index in their key;
  // translate through GroupMap.
  for (const LastUseAccum &From : O.LastUse) {
    std::uint64_t Key =
        (static_cast<std::uint64_t>(GroupMap[From.Key >> 32]) << 32) |
        (From.Key & 0xFFFFFFFFull);
    LastUse[lastUseFor(Key)].Drag.add(From.Drag);
  }

  for (const ClassAccum &From : O.Classes) {
    ClassAccum &C = Classes[classFor(From.Key)];
    if (C.ObjectCount == 0) {
      C.Class = From.Class;
      C.AKind = From.AKind;
      C.IsArray = From.IsArray;
    }
    C.ObjectCount += From.ObjectCount;
    C.TotalBytes += From.TotalBytes;
    C.NeverUsedCount += From.NeverUsedCount;
    C.TotalDrag.add(From.TotalDrag);
  }

  TotalDragSum.add(O.TotalDragSum);
  ReachableSum.add(O.ReachableSum);
  InUseSum.add(O.InUseSum);
}

void SiteGroupFold::remapSites(const std::vector<profiler::SiteId> &Map) {
  auto Remap = [&](SiteId Id) {
    return Id < Map.size() ? Map[Id] : profiler::InvalidSite;
  };
  for (GroupAccum &G : Groups)
    G.Site = Remap(G.Site);
  for (LastUseAccum &L : LastUse) {
    SiteId Use = static_cast<SiteId>(L.Key & 0xFFFFFFFFull);
    L.Key = (L.Key & ~0xFFFFFFFFull) | Remap(Use);
  }
  // The probe indexes now hold stale keys; per the RecordFold contract
  // no fold()/merge() follows a remap, so they are never consulted
  // again (finish() walks the accumulator vectors directly).
}

std::size_t SiteGroupFold::stateBytes() const {
  return sizeof(*this) + Groups.capacity() * sizeof(GroupAccum) +
         LastUse.capacity() * sizeof(LastUseAccum) +
         Classes.capacity() * sizeof(ClassAccum) + SiteIndex.stateBytes() +
         LastUseIndex.stateBytes() + ClassIndex.stateBytes();
}

DragReportData SiteGroupFold::finish(const ir::Program &,
                                     const profiler::SiteTable &Sites) const {
  DragReportData Data;
  Data.Groups.reserve(Groups.size());
  for (const GroupAccum &A : Groups) {
    SiteGroup G;
    G.Site = A.Site;
    G.ObjectCount = A.ObjectCount;
    G.NeverUsedCount = A.NeverUsedCount;
    G.TotalBytes = A.TotalBytes;
    G.LargeDragCount = A.LargeDragCount;
    // Exact logs never fed the weighted accumulators (see fold());
    // reconstruct from the integer state. Both sides of each branch are
    // correctly rounded values of the same exact quantity, so the
    // reconstruction is bit-identical to the accumulated form.
    G.EstObjects = Rate ? A.EstObjects.toDouble()
                        : static_cast<double>(A.ObjectCount);
    G.EstBytes = Rate ? A.EstBytes.toDouble()
                      : static_cast<double>(A.TotalBytes);
    G.TotalDrag = Rate ? A.TotalDrag.toDouble() : A.DragSum.toDouble();
    G.NeverUsedDrag = A.NeverUsedDrag.toDouble();
    G.DragVariance = A.DragVariance.toDouble();
    G.DragTimeHisto = A.Histo;
    // Exact moment sums -> Welford form. N >= 1 always (a group exists
    // only once a record folded into it). M2 = sum(X^2) - N*mean^2,
    // clamped: the subtraction can go slightly negative in rounding.
    auto Stat = [](std::uint64_t N, const ExactSum &Sum, const ExactSum &Sq,
                   double Min, double Max) {
      double S = Sum.toDouble();
      double Mean = S / static_cast<double>(N);
      double M2 = std::max(0.0, Sq.toDouble() - S * Mean);
      return RunningStat::fromMoments(N, Mean, M2, Min, Max);
    };
    G.DragPerObject = Stat(A.ObjectCount, A.DragSum, A.DragSq, A.DragMin,
                           A.DragMax);
    G.DragTimePerObject = Stat(A.ObjectCount, A.DragTimeSum, A.DragTimeSq,
                               A.DragTimeMin, A.DragTimeMax);
    G.LifeTimePerObject = Stat(A.ObjectCount, A.LifeSum, A.LifeSq, A.LifeMin,
                               A.LifeMax);
    Data.Groups.push_back(std::move(G));
  }

  // Attach the last-use partitions. Fold insertion order is
  // path-dependent (shards discover sites in their own order), so each
  // group's cells are sorted site-ascending -- the deterministic order
  // dominantLastUseSite() and the printers rely on.
  // Data.Groups is still in accumulator order here, so the cell's group
  // index addresses it directly.
  for (const LastUseAccum &L : LastUse) {
    std::uint32_t GI = static_cast<std::uint32_t>(L.Key >> 32);
    SiteId Use = static_cast<SiteId>(L.Key & 0xFFFFFFFFull);
    Data.Groups[GI].DragByLastUse.push_back({Use, L.Drag.toDouble()});
  }
  for (SiteGroup &G : Data.Groups)
    std::sort(G.DragByLastUse.begin(), G.DragByLastUse.end(),
              [](const auto &A, const auto &B) { return A.first < B.first; });

  // Deterministic tie-break: (drag desc, site asc) is a total order over
  // groups, so sequential, materialized and shard-merged folds -- which
  // discover sites in different orders -- all present the same sorted
  // report. This sort is what makes the merge path's output identical.
  std::sort(Data.Groups.begin(), Data.Groups.end(),
            [](const SiteGroup &A, const SiteGroup &B) {
              if (A.TotalDrag != B.TotalDrag)
                return A.TotalDrag > B.TotalDrag;
              return A.Site < B.Site;
            });
  Data.GroupIndex.reserve(Data.Groups.size());
  for (std::size_t I = 0, E = Data.Groups.size(); I != E; ++I)
    Data.GroupIndex[Data.Groups[I].Site] = I;

  // Coarse partition: key on the innermost frame of the nested site.
  struct CoarseKey {
    std::uint32_t MethodIndex;
    std::uint32_t Pc;
    bool operator<(const CoarseKey &O) const {
      return MethodIndex != O.MethodIndex ? MethodIndex < O.MethodIndex
                                          : Pc < O.Pc;
    }
  };
  std::map<CoarseKey, CoarseGroup> Coarse;
  for (const SiteGroup &G : Data.Groups) {
    const profiler::SiteFrame *Inner = Sites.innermost(G.Site);
    CoarseKey Key{Inner ? Inner->Method.Index : ~0u, Inner ? Inner->Pc : 0};
    CoarseGroup &C = Coarse[Key];
    if (C.NestedSites.empty() && Inner) {
      C.Method = Inner->Method;
      C.Pc = Inner->Pc;
      C.Line = Inner->Line;
    }
    C.TotalDrag += G.TotalDrag;
    C.ObjectCount += G.ObjectCount;
    C.NeverUsedCount += G.NeverUsedCount;
    C.NeverUsedDrag += G.NeverUsedDrag;
    C.NestedSites.push_back(G.Site);
  }
  Data.CoarseGroups.reserve(Coarse.size());
  for (auto &[Key, C] : Coarse)
    Data.CoarseGroups.push_back(std::move(C));
  std::sort(Data.CoarseGroups.begin(), Data.CoarseGroups.end(),
            [](const CoarseGroup &A, const CoarseGroup &B) {
              if (A.TotalDrag != B.TotalDrag)
                return A.TotalDrag > B.TotalDrag;
              if (A.Method != B.Method)
                return A.Method < B.Method;
              return A.Pc < B.Pc;
            });

  Data.ClassGroups.reserve(Classes.size());
  std::vector<std::uint64_t> ClassKeys;
  ClassKeys.reserve(Classes.size());
  for (const ClassAccum &A : Classes) {
    ClassGroup G;
    G.Class = A.Class;
    G.AKind = A.AKind;
    G.IsArray = A.IsArray;
    G.ObjectCount = A.ObjectCount;
    G.TotalBytes = A.TotalBytes;
    G.NeverUsedCount = A.NeverUsedCount;
    G.TotalDrag = A.TotalDrag.toDouble();
    Data.ClassGroups.push_back(std::move(G));
  }
  std::sort(Data.ClassGroups.begin(), Data.ClassGroups.end(),
            [](const ClassGroup &A, const ClassGroup &B) {
              if (A.TotalDrag != B.TotalDrag)
                return A.TotalDrag > B.TotalDrag;
              if (A.TotalBytes != B.TotalBytes)
                return A.TotalBytes > B.TotalBytes;
              // Same partition key order as the accumulator table: the
              // final deterministic tie-break (class index, arrays
              // bucketed above by kind).
              std::uint64_t KA = A.IsArray
                                     ? (1ull << 40) +
                                           static_cast<std::uint64_t>(A.AKind)
                                     : A.Class.Index;
              std::uint64_t KB = B.IsArray
                                     ? (1ull << 40) +
                                           static_cast<std::uint64_t>(B.AKind)
                                     : B.Class.Index;
              return KA < KB;
            });

  if (Rate) {
    Data.TotalDragSum = TotalDragSum.toDouble();
  } else {
    // Exact associativity makes the sum of group sums the per-record
    // total, bit for bit.
    ExactSum Total;
    for (const GroupAccum &A : Groups)
      Total.add(A.DragSum);
    Data.TotalDragSum = Total.toDouble();
  }
  Data.ReachableSum = ReachableSum.toDouble();
  Data.InUseSum = InUseSum.toDouble();
  return Data;
}

//===----------------------------------------------------------------------===//
// LifetimeFold
//===----------------------------------------------------------------------===//

void LifetimeFold::fold(const ObjectRecord &R) {
  unsigned __int128 B = R.Bytes;
  if (R.neverUsed())
    Void += B * R.voidTime();
  else {
    Lag += B * R.lagTime();
    Use += B * R.useTime();
    Drag += B * R.dragTime();
  }
  Reachable += B * R.lifeTime();
}

void LifetimeFold::merge(const RecordFold &Other) {
  const auto &O = static_cast<const LifetimeFold &>(Other);
  Lag += O.Lag;
  Use += O.Use;
  Drag += O.Drag;
  Void += O.Void;
  Reachable += O.Reachable;
}

LifetimeDecomposition LifetimeFold::finish() const {
  LifetimeDecomposition D;
  D.Lag = static_cast<SpaceTime>(Lag);
  D.Use = static_cast<SpaceTime>(Use);
  D.Drag = static_cast<SpaceTime>(Drag);
  D.Void = static_cast<SpaceTime>(Void);
  return D;
}

//===----------------------------------------------------------------------===//
// HeapCurveFold
//===----------------------------------------------------------------------===//

HeapCurveFold::HeapCurveFold(ByteTime End, std::uint32_t NumSamples)
    : Grid(makeHeapCurveGrid(End, NumSamples)), ReachDelta(Grid.size(), 0),
      InUseDelta(Grid.size(), 0) {}

void HeapCurveFold::addInterval(std::vector<std::int64_t> &Delta,
                                ByteTime From, ByteTime To,
                                std::int64_t Bytes) {
  // An event at time t affects exactly the grid cells with Grid[i] >= t
  // (the materialized sweep consumes events with Time <= T). Events past
  // the last grid time -- possible only if the caller's End undershot
  // the log -- are dropped, matching the sweep leaving them unconsumed.
  auto Bucket = [&](ByteTime T) {
    return std::lower_bound(Grid.begin(), Grid.end(), T) - Grid.begin();
  };
  std::size_t Lo = Bucket(From), Hi = Bucket(To);
  if (Lo < Delta.size())
    Delta[Lo] += Bytes;
  if (Hi < Delta.size())
    Delta[Hi] -= Bytes;
}

void HeapCurveFold::fold(const ObjectRecord &R) {
  auto B = static_cast<std::int64_t>(R.Bytes);
  if (R.CollectTime > R.AllocTime)
    addInterval(ReachDelta, R.AllocTime, R.CollectTime, B);
  if (R.LastUseTime > R.AllocTime)
    addInterval(InUseDelta, R.AllocTime, R.LastUseTime, B);
}

void HeapCurveFold::merge(const RecordFold &Other) {
  const auto &O = static_cast<const HeapCurveFold &>(Other);
  if (O.Grid != Grid)
    jdrag_unreachable("merging curve folds over different grids");
  for (std::size_t I = 0; I != ReachDelta.size(); ++I) {
    ReachDelta[I] += O.ReachDelta[I];
    InUseDelta[I] += O.InUseDelta[I];
  }
}

std::size_t HeapCurveFold::stateBytes() const {
  return sizeof(*this) + Grid.capacity() * sizeof(ByteTime) +
         (ReachDelta.capacity() + InUseDelta.capacity()) *
             sizeof(std::int64_t);
}

HeapCurve HeapCurveFold::finish() const {
  HeapCurve C;
  C.Times = Grid;
  C.ReachableBytes.reserve(Grid.size());
  C.InUseBytes.reserve(Grid.size());
  std::int64_t Reach = 0, InUse = 0;
  for (std::size_t I = 0; I != Grid.size(); ++I) {
    Reach += ReachDelta[I];
    InUse += InUseDelta[I];
    C.ReachableBytes.push_back(
        static_cast<std::uint64_t>(std::max<std::int64_t>(0, Reach)));
    C.InUseBytes.push_back(
        static_cast<std::uint64_t>(std::max<std::int64_t>(0, InUse)));
  }
  return C;
}

//===----------------------------------------------------------------------===//
// CsvExportFold
//===----------------------------------------------------------------------===//

CsvExportFold::CsvExportFold(const ir::Program &P,
                             const profiler::SiteTable &Sites,
                             const std::string &Path)
    : P(P), Sites(Sites) {
  Out = std::fopen(Path.c_str(), "w");
  Ok = Out != nullptr;
  if (!Ok)
    return;
  std::string Header;
  const std::vector<std::string> &Cols = recordsCsvColumns();
  for (std::size_t I = 0; I != Cols.size(); ++I) {
    if (I)
      Header += ',';
    Header += CsvWriter::escapeCell(Cols[I]);
  }
  Header += '\n';
  Ok = std::fwrite(Header.data(), 1, Header.size(), Out) == Header.size();
}

CsvExportFold::~CsvExportFold() {
  if (Out)
    std::fclose(Out);
}

void CsvExportFold::fold(const ObjectRecord &R) {
  if (!Ok)
    return;
  std::string Row;
  std::vector<std::string> Cells = recordCsvRow(P, Sites, R);
  for (std::size_t I = 0; I != Cells.size(); ++I) {
    if (I)
      Row += ',';
    Row += CsvWriter::escapeCell(Cells[I]);
  }
  Row += '\n';
  Ok = std::fwrite(Row.data(), 1, Row.size(), Out) == Row.size();
  ++Rows;
}

void CsvExportFold::merge(const RecordFold &) {
  jdrag_unreachable("CsvExportFold is order-sensitive and cannot be sharded");
}

bool CsvExportFold::finish() {
  if (Out) {
    if (std::fclose(Out) != 0)
      Ok = false;
    Out = nullptr;
  }
  return Ok;
}
