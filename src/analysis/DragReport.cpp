//===- analysis/DragReport.cpp --------------------------------------------===//

#include "analysis/DragReport.h"

#include "analysis/RecordFold.h"
#include "support/Format.h"

#include <algorithm>

using namespace jdrag;
using namespace jdrag::analysis;

std::size_t SiteGroup::histoBucket(ByteTime DragTime) {
  std::size_t Bucket = 0;
  ByteTime Limit = 4 * 1024;
  while (Bucket + 1 < NumHistoBuckets && DragTime >= Limit) {
    Limit *= 4;
    ++Bucket;
  }
  return Bucket;
}

std::string SiteGroup::histoBucketLabel(std::size_t Bucket) {
  auto Fmt = [](ByteTime B) {
    if (B >= 1024 * 1024)
      return formatString("%lluM",
                          static_cast<unsigned long long>(B / (1024 * 1024)));
    return formatString("%lluK",
                        static_cast<unsigned long long>(B / 1024));
  };
  ByteTime Lo = 4 * 1024;
  for (std::size_t I = 0; I != Bucket; ++I)
    Lo *= 4;
  if (Bucket == 0)
    return "<" + Fmt(Lo);
  if (Bucket + 1 == NumHistoBuckets)
    return ">=" + Fmt(Lo / 4); // lower edge of the open bucket
  return Fmt(Lo / 4) + "-" + Fmt(Lo);
}

std::string ClassGroup::name(const ir::Program &P) const {
  if (IsArray)
    return ir::arrayKindName(AKind);
  if (!Class.isValid() || Class.Index >= P.Classes.size())
    return "<unknown>";
  return P.classOf(Class).Name;
}

SiteId SiteGroup::dominantLastUseSite() const {
  // DragByLastUse is sorted site-ascending, so strict > picks the
  // lowest-id site among exact ties -- the same answer on every
  // aggregation path.
  SiteId Best = InvalidSite;
  SpaceTime BestDrag = -1.0;
  for (const auto &[Site, Drag] : DragByLastUse)
    if (Site != InvalidSite && Drag > BestDrag) {
      Best = Site;
      BestDrag = Drag;
    }
  return Best;
}

DragReport::DragReport(const ir::Program &P, const ProfileLog &Log)
    : P(P), TheLog(Log), End(Log.EndTime) {
  // One pass through Log.Records feeding the same fold the streaming
  // engine runs off the decoder -- so `--materialize` really is a
  // bit-identity oracle, not a second implementation to keep in sync.
  // The site-table size hint presizes the group storage and the probe
  // index (a log's distinct alloc sites are a subset of its sites).
  SiteGroupFold Fold(Log.SampleRate, Log.Sites.size());
  for (const ObjectRecord &R : Log.Records)
    Fold.fold(R);
  adopt(Fold.finish(P, Log.Sites));
}

DragReport::DragReport(const ir::Program &P, const ProfileLog &Log,
                       DragReportData Data)
    : P(P), TheLog(Log), End(Log.EndTime) {
  adopt(std::move(Data));
}

void DragReport::adopt(DragReportData Data) {
  Groups = std::move(Data.Groups);
  CoarseGroups = std::move(Data.CoarseGroups);
  ClassGroups = std::move(Data.ClassGroups);
  GroupIndex = std::move(Data.GroupIndex);
  TotalDragSum = Data.TotalDragSum;
  ReachableSum = Data.ReachableSum;
  InUseSum = Data.InUseSum;
}

const SiteGroup *DragReport::group(SiteId Site) const {
  auto It = GroupIndex.find(Site);
  return It == GroupIndex.end() ? nullptr : &Groups[It->second];
}
