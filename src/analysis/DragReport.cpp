//===- analysis/DragReport.cpp --------------------------------------------===//

#include "analysis/DragReport.h"

#include "support/Format.h"

#include <algorithm>
#include <map>

using namespace jdrag;
using namespace jdrag::analysis;

std::size_t SiteGroup::histoBucket(ByteTime DragTime) {
  std::size_t Bucket = 0;
  ByteTime Limit = 4 * 1024;
  while (Bucket + 1 < NumHistoBuckets && DragTime >= Limit) {
    Limit *= 4;
    ++Bucket;
  }
  return Bucket;
}

std::string SiteGroup::histoBucketLabel(std::size_t Bucket) {
  auto Fmt = [](ByteTime B) {
    if (B >= 1024 * 1024)
      return formatString("%lluM",
                          static_cast<unsigned long long>(B / (1024 * 1024)));
    return formatString("%lluK",
                        static_cast<unsigned long long>(B / 1024));
  };
  ByteTime Lo = 4 * 1024;
  for (std::size_t I = 0; I != Bucket; ++I)
    Lo *= 4;
  if (Bucket == 0)
    return "<" + Fmt(Lo);
  if (Bucket + 1 == NumHistoBuckets)
    return ">=" + Fmt(Lo / 4); // lower edge of the open bucket
  return Fmt(Lo / 4) + "-" + Fmt(Lo);
}

std::string ClassGroup::name(const ir::Program &P) const {
  if (IsArray)
    return ir::arrayKindName(AKind);
  if (!Class.isValid() || Class.Index >= P.Classes.size())
    return "<unknown>";
  return P.classOf(Class).Name;
}

SiteId SiteGroup::dominantLastUseSite() const {
  SiteId Best = InvalidSite;
  SpaceTime BestDrag = -1.0;
  for (const auto &[Site, Drag] : DragByLastUse)
    if (Site != InvalidSite && Drag > BestDrag) {
      Best = Site;
      BestDrag = Drag;
    }
  return Best;
}

DragReport::DragReport(const ir::Program &P, const ProfileLog &Log)
    : P(P), TheLog(Log), End(Log.EndTime) {
  // Sampled logs (SampleRate != 0) hold a size-weighted Bernoulli subset
  // of the allocations; every space-time sum below is scaled by the
  // record's inverse inclusion probability so the report estimates the
  // exact profile (Horvitz-Thompson). Exact logs get W == 1.0, which is
  // IEEE-exact, so the sums are bit-identical to the unsampled math.
  const std::uint64_t Rate = Log.SampleRate;
  std::unordered_map<SiteId, std::size_t> Index;
  for (const ObjectRecord &R : Log.Records) {
    auto [It, Fresh] = Index.try_emplace(R.AllocSite, Groups.size());
    if (Fresh) {
      Groups.emplace_back();
      Groups.back().Site = R.AllocSite;
    }
    SiteGroup &G = Groups[It->second];
    ++G.ObjectCount;
    G.TotalBytes += R.Bytes;
    double Prob = profiler::sampleProbability(R.Bytes, Rate);
    SpaceTime W = 1.0 / Prob;
    SpaceTime Drag = R.drag() * W;
    G.EstObjects += W;
    G.EstBytes += W * static_cast<double>(R.Bytes);
    G.TotalDrag += Drag;
    G.DragVariance += profiler::sampleVarianceTerm(R.drag(), Prob);
    // Per-object distributions describe the sampled records themselves,
    // not the population, so they stay unweighted.
    G.DragPerObject.add(R.drag());
    G.DragTimePerObject.add(static_cast<double>(R.dragTime()));
    G.LifeTimePerObject.add(static_cast<double>(R.lifeTime()));
    if (R.neverUsed()) {
      ++G.NeverUsedCount;
      G.NeverUsedDrag += Drag;
    }
    if (R.lifeTime() > 0 &&
        static_cast<double>(R.dragTime()) >=
            static_cast<double>(R.lifeTime()) / 3.0)
      ++G.LargeDragCount;
    ++G.DragTimeHisto[SiteGroup::histoBucket(R.dragTime())];
    G.DragByLastUse[R.neverUsed() ? InvalidSite : R.LastUseSite] += Drag;

    TotalDragSum += Drag;
    ReachableSum += W * static_cast<SpaceTime>(R.Bytes) *
                    static_cast<SpaceTime>(R.lifeTime());
    InUseSum += W * static_cast<SpaceTime>(R.Bytes) *
                static_cast<SpaceTime>(R.inUseTime());
  }

  std::sort(Groups.begin(), Groups.end(),
            [](const SiteGroup &A, const SiteGroup &B) {
              if (A.TotalDrag != B.TotalDrag)
                return A.TotalDrag > B.TotalDrag;
              return A.Site < B.Site; // deterministic tie-break
            });
  for (std::size_t I = 0, E = Groups.size(); I != E; ++I)
    GroupIndex[Groups[I].Site] = I;

  // Coarse partition: key on the innermost frame of the nested site.
  struct CoarseKey {
    std::uint32_t MethodIndex;
    std::uint32_t Pc;
    bool operator<(const CoarseKey &O) const {
      return MethodIndex != O.MethodIndex ? MethodIndex < O.MethodIndex
                                          : Pc < O.Pc;
    }
  };
  std::map<CoarseKey, CoarseGroup> Coarse;
  for (const SiteGroup &G : Groups) {
    const profiler::SiteFrame *Inner = Log.Sites.innermost(G.Site);
    CoarseKey Key{Inner ? Inner->Method.Index : ~0u, Inner ? Inner->Pc : 0};
    CoarseGroup &C = Coarse[Key];
    if (C.NestedSites.empty() && Inner) {
      C.Method = Inner->Method;
      C.Pc = Inner->Pc;
      C.Line = Inner->Line;
    }
    C.TotalDrag += G.TotalDrag;
    C.ObjectCount += G.ObjectCount;
    C.NeverUsedCount += G.NeverUsedCount;
    C.NeverUsedDrag += G.NeverUsedDrag;
    C.NestedSites.push_back(G.Site);
  }
  CoarseGroups.reserve(Coarse.size());
  for (auto &[Key, C] : Coarse)
    CoarseGroups.push_back(std::move(C));
  std::sort(CoarseGroups.begin(), CoarseGroups.end(),
            [](const CoarseGroup &A, const CoarseGroup &B) {
              if (A.TotalDrag != B.TotalDrag)
                return A.TotalDrag > B.TotalDrag;
              if (A.Method != B.Method)
                return A.Method < B.Method;
              return A.Pc < B.Pc;
            });

  // Per-class partition: key = class index, or array kind tagged high.
  std::map<std::uint64_t, ClassGroup> ByClass;
  for (const ObjectRecord &R : Log.Records) {
    std::uint64_t Key = R.IsArray
                            ? (1ull << 40) + static_cast<std::uint64_t>(
                                                 R.AKind)
                            : R.Class.Index;
    ClassGroup &G = ByClass[Key];
    if (G.ObjectCount == 0) {
      G.Class = R.Class;
      G.AKind = R.AKind;
      G.IsArray = R.IsArray;
    }
    ++G.ObjectCount;
    G.TotalBytes += R.Bytes;
    G.TotalDrag +=
        R.drag() / profiler::sampleProbability(R.Bytes, Rate);
    if (R.neverUsed())
      ++G.NeverUsedCount;
  }
  ClassGroups.reserve(ByClass.size());
  for (auto &[Key, G] : ByClass)
    ClassGroups.push_back(std::move(G));
  std::sort(ClassGroups.begin(), ClassGroups.end(),
            [](const ClassGroup &A, const ClassGroup &B) {
              if (A.TotalDrag != B.TotalDrag)
                return A.TotalDrag > B.TotalDrag;
              return A.TotalBytes > B.TotalBytes;
            });
}

const SiteGroup *DragReport::group(SiteId Site) const {
  auto It = GroupIndex.find(Site);
  return It == GroupIndex.end() ? nullptr : &Groups[It->second];
}
