//===- analysis/ReportPrinter.h - Human-readable drag reports ---*- C++ -*-===//
//
// Part of jdrag (PLDI 2001 "Heap Profiling for Space-Efficient Java").
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders the tool's user-facing output: allocation sites sorted by
/// accumulated drag, each with its lifetime pattern, suggested rewrite,
/// never-used fraction, and dominant last-use site -- everything a
/// programmer (or the AutoOptimizer) needs to pick a transformation.
///
//===----------------------------------------------------------------------===//

#ifndef JDRAG_ANALYSIS_REPORTPRINTER_H
#define JDRAG_ANALYSIS_REPORTPRINTER_H

#include "analysis/DragReport.h"
#include "analysis/Patterns.h"

#include <string>

namespace jdrag::analysis {

/// Rendering options.
struct ReportOptions {
  std::uint32_t MaxSites = 20;  ///< top-N nested sites to print
  bool ShowLastUseSites = true; ///< include the last-use partition
  bool ShowCoarse = true;       ///< include the coarse partition
  PatternThresholds Thresholds;
};

/// Renders the full report as text.
std::string renderDragReport(const DragReport &Report,
                             ReportOptions Opts = ReportOptions());

/// Renders one site group's detail block.
std::string renderSiteDetail(const DragReport &Report, const SiteGroup &G,
                             PatternThresholds T = PatternThresholds());

} // namespace jdrag::analysis

#endif // JDRAG_ANALYSIS_REPORTPRINTER_H
