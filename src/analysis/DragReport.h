//===- analysis/DragReport.h - Phase-2 drag aggregation ---------*- C++ -*-===//
//
// Part of jdrag (PLDI 2001 "Heap Profiling for Space-Efficient Java").
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The offline analyzer's core: partitions the dragged objects of a
/// ProfileLog by nested allocation site (and coarsely by plain allocation
/// site), sums each group's drag space-time product, and sorts groups by
/// accumulated drag -- "allocation sites having a large drag suggest a
/// potential for significant space savings. Therefore, our tool sorts
/// allocation sites according to their drag" (paper section 1.1).
///
/// Each group also carries the sub-partition by last-use site (used to
/// find the program point where the reference dies, section 2.2) and the
/// never-used subset ("a sure bet for code rewriting").
///
//===----------------------------------------------------------------------===//

#ifndef JDRAG_ANALYSIS_DRAGREPORT_H
#define JDRAG_ANALYSIS_DRAGREPORT_H

#include "profiler/ProfileLog.h"
#include "profiler/Sampling.h"
#include "support/Statistics.h"

#include <array>
#include <unordered_map>
#include <utility>

namespace jdrag::analysis {

using profiler::InvalidSite;
using profiler::ObjectRecord;
using profiler::ProfileLog;
using profiler::SiteId;

struct DragReportData; // RecordFold.h: the fold engine's finished output

/// Aggregate over all objects allocated at one nested allocation site.
///
/// Over an exact log every field is an exact sum. Over a sampled log
/// (ProfileLog::SampleRate != 0) the integer fields stay *raw* counts
/// of the sampled records while the SpaceTime sums are scaled
/// Horvitz-Thompson estimates of the exact-profile values: each sampled
/// record contributes its value times 1/p(bytes). EstObjects/EstBytes
/// are the scaled companions of ObjectCount/TotalBytes, and
/// DragVariance accumulates the HT variance of TotalDrag so reports can
/// show a confidence interval next to the estimate.
struct SiteGroup {
  SiteId Site = InvalidSite; ///< nested allocation site
  std::uint64_t ObjectCount = 0;  ///< raw records (the sample count)
  std::uint64_t NeverUsedCount = 0;
  std::uint64_t TotalBytes = 0;   ///< raw bytes of sampled records
  double EstObjects = 0;          ///< HT estimate of true object count
  double EstBytes = 0;            ///< HT estimate of true byte total
  SpaceTime TotalDrag = 0;     ///< byte^2 (HT-scaled when sampled)
  SpaceTime NeverUsedDrag = 0; ///< drag from never-used objects
  /// HT variance of TotalDrag (0 for exact logs).
  double DragVariance = 0;
  RunningStat DragPerObject;     ///< distribution of per-object drag
  RunningStat DragTimePerObject; ///< distribution of per-object drag time
  RunningStat LifeTimePerObject;
  std::uint64_t LargeDragCount = 0; ///< drag time >= 1/3 of lifetime
  /// Drag partitioned by nested last-use site (InvalidSite buckets the
  /// never-used drag), sorted site-ascending. A flat vector, not a map:
  /// it is write-once at finalization, read-only afterwards, and the
  /// sorted order makes dominantLastUseSite() deterministic across the
  /// streaming, materialized and shard-merged aggregation paths.
  std::vector<std::pair<SiteId, SpaceTime>> DragByLastUse;
  /// Log-scale histogram of per-object drag times ("the tool also
  /// partitions the dragged objects at that anchor allocation site
  /// according to their drag time", section 3.4). Bucket i counts drag
  /// times in [4^i KB, 4^(i+1) KB), bucket 0 additionally below 4 KB.
  static constexpr std::size_t NumHistoBuckets = 8;
  std::array<std::uint64_t, NumHistoBuckets> DragTimeHisto = {};

  /// Bucket index for a drag time.
  static std::size_t histoBucket(ByteTime DragTime);
  /// Human-readable bucket label, e.g. "16K-64K".
  static std::string histoBucketLabel(std::size_t Bucket);

  double neverUsedDragFraction() const {
    return TotalDrag > 0 ? NeverUsedDrag / TotalDrag : 0.0;
  }
  double neverUsedObjectFraction() const {
    return ObjectCount ? static_cast<double>(NeverUsedCount) /
                             static_cast<double>(ObjectCount)
                       : 0.0;
  }
  double largeDragObjectFraction() const {
    return ObjectCount ? static_cast<double>(LargeDragCount) /
                             static_cast<double>(ObjectCount)
                       : 0.0;
  }

  /// Half-width of the 95% confidence interval on TotalDrag (byte^2);
  /// 0 for exact logs.
  double dragCI95() const { return profiler::ci95(DragVariance); }

  /// The last-use site accounting for the most drag (InvalidSite if none
  /// of the group's objects was ever used).
  SiteId dominantLastUseSite() const;
};

/// Coarse partition by plain allocation site (innermost frame only); one
/// nested site always maps to exactly one coarse site.
struct CoarseGroup {
  ir::MethodId Method;
  std::uint32_t Pc = 0;
  std::uint32_t Line = 0;
  SpaceTime TotalDrag = 0;
  std::uint64_t ObjectCount = 0;
  std::uint64_t NeverUsedCount = 0;
  SpaceTime NeverUsedDrag = 0;
  std::vector<SiteId> NestedSites;
};

/// Per-class aggregation (the "heap configuration" view of the memory
/// profilers the paper's related work cites): drag and volume by object
/// class, with arrays bucketed by element kind.
struct ClassGroup {
  ir::ClassId Class;          ///< invalid for array buckets
  ir::ArrayKind AKind = ir::ArrayKind::Int;
  bool IsArray = false;
  SpaceTime TotalDrag = 0;
  std::uint64_t ObjectCount = 0;
  std::uint64_t TotalBytes = 0;
  std::uint64_t NeverUsedCount = 0;

  /// "Point" or "char[]".
  std::string name(const ir::Program &P) const;
};

/// The phase-2 report over one profile log.
class DragReport {
public:
  /// Materialized path: folds Log.Records through the same SiteGroupFold
  /// the streaming engine uses -- it is the bit-identity oracle for the
  /// streaming path, not a separate implementation.
  DragReport(const ir::Program &P, const ProfileLog &Log);

  /// Streaming path: adopts a finished fold. \p Log is the record-free
  /// shell (sites, sampling params, end time) the streaming driver
  /// produced alongside the fold.
  DragReport(const ir::Program &P, const ProfileLog &Log,
             DragReportData Data);

  /// Nested-site groups, sorted by descending total drag.
  const std::vector<SiteGroup> &groups() const { return Groups; }

  /// Coarse (plain allocation site) groups, sorted by descending drag.
  const std::vector<CoarseGroup> &coarseGroups() const {
    return CoarseGroups;
  }

  /// Per-class groups, sorted by descending drag.
  const std::vector<ClassGroup> &classGroups() const { return ClassGroups; }

  /// Group lookup by nested site id (nullptr if the site allocated
  /// nothing in this log).
  const SiteGroup *group(SiteId Site) const;

  SpaceTime totalDrag() const { return TotalDragSum; }
  SpaceTime reachableIntegral() const { return ReachableSum; }
  SpaceTime inUseIntegral() const { return InUseSum; }
  ByteTime endTime() const { return End; }

  const ir::Program &program() const { return P; }
  const ProfileLog &log() const { return TheLog; }

private:
  void adopt(DragReportData Data);

  const ir::Program &P;
  const ProfileLog &TheLog;
  std::vector<SiteGroup> Groups;
  std::vector<CoarseGroup> CoarseGroups;
  std::vector<ClassGroup> ClassGroups;
  std::unordered_map<SiteId, std::size_t> GroupIndex;
  SpaceTime TotalDragSum = 0;
  SpaceTime ReachableSum = 0;
  SpaceTime InUseSum = 0;
  ByteTime End = 0;
};

} // namespace jdrag::analysis

#endif // JDRAG_ANALYSIS_DRAGREPORT_H
