//===- ir/Verifier.h - Bytecode verification --------------------*- C++ -*-===//
//
// Part of jdrag (PLDI 2001 "Heap Profiling for Space-Efficient Java").
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An abstract-interpretation bytecode verifier in the spirit of the JVM
/// verifier: it checks operand validity, local-slot kind agreement, and
/// simulates the operand stack (depth and kinds) over all paths, requiring
/// consistent stack states at merge points. As a side effect it computes
/// each method's MaxStack. Both the interpreter and the transformation
/// passes rely on verified programs; passes re-verify their output.
///
//===----------------------------------------------------------------------===//

#ifndef JDRAG_IR_VERIFIER_H
#define JDRAG_IR_VERIFIER_H

#include "ir/Program.h"

#include <string>

namespace jdrag::ir {

/// Verifies one method; appends messages to \p Err. Returns true on
/// success. Updates \p M's MaxStack.
bool verifyMethod(const Program &P, MethodInfo &M, std::string &Err);

/// Verifies every method plus whole-program invariants (main present,
/// supers-first class order). Returns true on success; on failure \p Err
/// (if non-null) receives newline-separated diagnostics.
bool verifyProgram(Program &P, std::string *Err = nullptr);

} // namespace jdrag::ir

#endif // JDRAG_IR_VERIFIER_H
