//===- ir/JasmPrinter.cpp -------------------------------------------------===//

#include "ir/JasmPrinter.h"

#include "support/Format.h"

#include <set>
#include <unordered_set>

using namespace jdrag;
using namespace jdrag::ir;

namespace {

/// A name is printable if the tokenizer reads it back as one token and
/// member references split correctly on the last '.'.
bool nameIsPrintable(const std::string &Name, bool AllowDot) {
  if (Name.empty())
    return false;
  for (char C : Name) {
    if (C == ' ' || C == '\t' || C == '\r' || C == '\n' || C == '(' ||
        C == ')' || C == ',' || C == ';')
      return false;
    if (C == '.' && !AllowDot)
      return false;
  }
  // A trailing ':' would parse as a label binding.
  return Name.back() != ':';
}

class Printer {
public:
  explicit Printer(const Program &P) : P(P) {}

  std::optional<std::string> run(std::string *Err) {
    bool Ok = check();
    if (Ok) {
      printNatives();
      for (const ClassInfo &C : P.Classes) {
        if (isBuiltin(C.Id))
          continue;
        if (!printClass(C)) {
          Ok = false;
          break;
        }
      }
    }
    if (!Ok) {
      if (Err)
        *Err = Error;
      return std::nullopt;
    }
    Out += "main " + P.qualifiedMethodName(P.MainMethod) + "\n";
    return std::move(Out);
  }

private:
  const Program &P;
  std::string Out;
  std::string Error;

  bool fail(const std::string &Msg) {
    if (Error.empty())
      Error = Msg;
    return false;
  }

  bool isBuiltin(ClassId Id) const {
    return Id == P.ObjectClass || Id == P.ThrowableClass || Id == P.OOMClass;
  }

  /// Everything the grammar cannot express is rejected up front so the
  /// output, when produced, always reassembles.
  bool check() {
    if (!P.MainMethod.isValid())
      return fail("program has no main method");
    for (const ClassInfo &C : P.Classes) {
      if (isBuiltin(C.Id)) {
        // The assembler recreates the built-ins itself; any extra
        // member would be lost, so refuse to print such a program.
        if (C.DeclaredMethods.size() != 1 ||
            !C.DeclaredInstanceFields.empty() ||
            !C.DeclaredStaticFields.empty())
          return fail("built-in class '" + C.Name + "' has extra members");
        continue;
      }
      if (!nameIsPrintable(C.Name, /*AllowDot=*/false))
        return fail("class name '" + C.Name + "' is not printable as jasm");
      std::unordered_set<std::string> MethodNames;
      for (MethodId Id : C.DeclaredMethods) {
        const MethodInfo &M = P.methodOf(Id);
        if (!nameIsPrintable(M.Name, /*AllowDot=*/false))
          return fail("method name '" + M.Name + "' is not printable");
        if (!MethodNames.insert(M.Name).second)
          return fail("class '" + C.Name + "' overloads method '" + M.Name +
                      "' (jasm references methods by name)");
      }
      for (FieldId Id : C.DeclaredInstanceFields)
        if (!nameIsPrintable(P.fieldOf(Id).Name, /*AllowDot=*/false))
          return fail("field name '" + P.fieldOf(Id).Name +
                      "' is not printable");
      for (FieldId Id : C.DeclaredStaticFields)
        if (!nameIsPrintable(P.fieldOf(Id).Name, /*AllowDot=*/false))
          return fail("field name '" + P.fieldOf(Id).Name +
                      "' is not printable");
    }
    for (const NativeInfo &N : P.Natives)
      if (!nameIsPrintable(N.Name, /*AllowDot=*/true))
        return fail("native name '" + N.Name + "' is not printable");
    return true;
  }

  void printNatives() {
    for (const NativeInfo &N : P.Natives) {
      Out += "native " + N.Name + " (";
      for (std::size_t I = 0, E = N.Params.size(); I != E; ++I) {
        if (I)
          Out += ",";
        Out += std::string(" ") + valueKindName(N.Params[I]);
      }
      Out += std::string(" ) ") + valueKindName(N.Ret) + "\n";
    }
    if (!P.Natives.empty())
      Out += "\n";
  }

  void printField(const FieldInfo &F) {
    Out += std::string("  field ") + F.Name + " " + valueKindName(F.Kind);
    if (F.IsStatic)
      Out += " static";
    if (F.IsFinal)
      Out += " final";
    Out += std::string(" ") + visibilityName(F.Vis) + "\n";
  }

  bool printClass(const ClassInfo &C) {
    Out += "class " + C.Name + " extends " + P.classOf(C.Super).Name;
    if (C.IsLibrary)
      Out += " library";
    Out += "\n";
    // Fields first: declaration order fixes the slot layout.
    for (FieldId Id : C.DeclaredInstanceFields)
      printField(P.fieldOf(Id));
    for (FieldId Id : C.DeclaredStaticFields)
      printField(P.fieldOf(Id));
    for (MethodId Id : C.DeclaredMethods)
      if (!printMethod(P.methodOf(Id)))
        return false;
    Out += "end\n\n";
    return true;
  }

  bool printMethod(const MethodInfo &M) {
    if (M.IsNative) {
      Out += "  nativemethod " + M.Name + " " +
             P.Natives[M.Native.Index].Name + "\n";
      return true;
    }
    Out += "  method " + M.Name + " (";
    for (std::size_t I = 0, E = M.Params.size(); I != E; ++I) {
      if (I)
        Out += " ,";
      Out += std::string(" ") + valueKindName(M.Params[I]) +
             formatString(" p%zu", I);
    }
    Out += std::string(" ) ") + valueKindName(M.Ret);
    if (M.IsStatic)
      Out += " static";
    Out += std::string(" ") + visibilityName(M.Vis) + "\n";

    // Extra local slots, in slot order so the assembler reassigns the
    // same indices; instructions then use raw slot numbers.
    for (std::uint32_t S = M.numParamSlots(), E = M.numLocals(); S != E; ++S)
      Out += formatString("    local t%u %s\n", S,
                          valueKindName(M.LocalKinds[S]));

    // Every branch target and handler boundary gets a pc-named label.
    std::set<std::uint32_t> LabelPcs;
    for (const Instruction &I : M.Code)
      if (isBranch(I.Op))
        LabelPcs.insert(static_cast<std::uint32_t>(I.A));
    for (const ExceptionHandler &H : M.Handlers) {
      LabelPcs.insert(H.Start);
      LabelPcs.insert(H.End);
      LabelPcs.insert(H.Target);
    }
    for (const ExceptionHandler &H : M.Handlers) {
      Out += formatString("    handler L%u L%u L%u", H.Start, H.End,
                          H.Target);
      if (H.CatchType.isValid())
        Out += " " + P.classOf(H.CatchType).Name;
      Out += "\n";
    }

    for (std::uint32_t Pc = 0, E = static_cast<std::uint32_t>(M.Code.size());
         Pc != E; ++Pc) {
      if (LabelPcs.count(Pc))
        Out += formatString("  L%u:\n", Pc);
      Out += "    " + renderInstruction(M.Code[Pc]) + "\n";
    }
    // A handler range may end at code size; bind that label last.
    if (LabelPcs.count(static_cast<std::uint32_t>(M.Code.size())))
      Out += formatString("  L%zu:\n", M.Code.size());
    Out += "  end\n";
    return true;
  }

  std::string renderInstruction(const Instruction &I) const {
    std::string S = opcodeName(I.Op);
    switch (I.Op) {
    case Opcode::IConst:
      return S + formatString(" %lld", static_cast<long long>(I.IVal));
    case Opcode::DConst:
      // %.17g survives strtod exactly for every finite double.
      return S + formatString(" %.17g", I.DVal);
    case Opcode::ILoad:
    case Opcode::IStore:
    case Opcode::DLoad:
    case Opcode::DStore:
    case Opcode::ALoad:
    case Opcode::AStore:
      return S + formatString(" %d", I.A);
    case Opcode::New:
      return S + " " +
             P.classOf(ClassId(static_cast<std::uint32_t>(I.A))).Name;
    case Opcode::NewArray:
      // arrayKindName() appends "[]"; the grammar wants the bare kind.
      switch (static_cast<ArrayKind>(I.A)) {
      case ArrayKind::Char:
        return S + " char";
      case ArrayKind::Int:
        return S + " int";
      case ArrayKind::Double:
        return S + " double";
      case ArrayKind::Ref:
        return S + " ref";
      }
      return S;
    case Opcode::GetField:
    case Opcode::PutField:
    case Opcode::GetStatic:
    case Opcode::PutStatic:
      return S + " " +
             P.qualifiedFieldName(FieldId(static_cast<std::uint32_t>(I.A)));
    case Opcode::InvokeVirtual:
    case Opcode::InvokeSpecial:
    case Opcode::InvokeStatic:
      return S + " " +
             P.qualifiedMethodName(MethodId(static_cast<std::uint32_t>(I.A)));
    default:
      if (isBranch(I.Op))
        return S + formatString(" L%d", I.A);
      return S;
    }
  }
};

} // namespace

std::optional<std::string> jdrag::ir::printProgramAsJasm(const Program &P,
                                                         std::string *Err) {
  return Printer(P).run(Err);
}
