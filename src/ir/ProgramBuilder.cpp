//===- ir/ProgramBuilder.cpp ----------------------------------------------===//

#include "ir/ProgramBuilder.h"

#include "support/ErrorHandling.h"

#include <cassert>

using namespace jdrag;
using namespace jdrag::ir;

//===----------------------------------------------------------------------===//
// MethodBuilder
//===----------------------------------------------------------------------===//

MethodBuilder::MethodBuilder(ProgramBuilder &PB, MethodId Id)
    : PB(PB), Id(Id), CurLine(PB.program().methodOf(Id).DeclLine) {}

std::uint32_t MethodBuilder::newLocal(ValueKind K) {
  assert(K != ValueKind::Void && "locals cannot be void");
  MethodInfo &M = PB.program().methodOf(Id);
  M.LocalKinds.push_back(K);
  return static_cast<std::uint32_t>(M.LocalKinds.size()) - 1;
}

std::uint32_t MethodBuilder::stmt() {
  CurLine = PB.NextLine++;
  return CurLine;
}

Label MethodBuilder::newLabel() {
  Label L;
  L.Idx = static_cast<std::uint32_t>(LabelPcs.size());
  LabelPcs.push_back(-1);
  return L;
}

MethodBuilder &MethodBuilder::bind(Label L) {
  assert(L.isValid() && L.Idx < LabelPcs.size() && "unknown label");
  assert(LabelPcs[L.Idx] < 0 && "label bound twice");
  LabelPcs[L.Idx] =
      static_cast<std::int64_t>(PB.program().methodOf(Id).Code.size());
  return *this;
}

MethodBuilder &MethodBuilder::addHandler(Label Start, Label End, Label Target,
                                         ClassId Type) {
  HandlerFixups.push_back({Start.Idx, End.Idx, Target.Idx, Type});
  return *this;
}

MethodBuilder &MethodBuilder::emit(Opcode Op, std::int32_t A,
                                   std::int64_t IVal, double DVal) {
  assert(!Finished && "emitting into a finished method");
  Instruction I;
  I.Op = Op;
  I.Line = CurLine;
  I.A = A;
  I.IVal = IVal;
  I.DVal = DVal;
  PB.program().methodOf(Id).Code.push_back(I);
  return *this;
}

MethodBuilder &MethodBuilder::emitJump(Opcode Op, Label L) {
  assert(L.isValid() && L.Idx < LabelPcs.size() && "unknown label");
  Fixups.push_back(
      {static_cast<std::uint32_t>(PB.program().methodOf(Id).Code.size()),
       L.Idx});
  return emit(Op, /*A=*/-1);
}

MethodBuilder &MethodBuilder::iconst(std::int64_t V) {
  return emit(Opcode::IConst, 0, V);
}
MethodBuilder &MethodBuilder::dconst(double V) {
  return emit(Opcode::DConst, 0, 0, V);
}
MethodBuilder &MethodBuilder::aconstNull() { return emit(Opcode::AConstNull); }
MethodBuilder &MethodBuilder::nop() { return emit(Opcode::Nop); }
MethodBuilder &MethodBuilder::pop() { return emit(Opcode::Pop); }
MethodBuilder &MethodBuilder::dup() { return emit(Opcode::Dup); }
MethodBuilder &MethodBuilder::swap() { return emit(Opcode::Swap); }

MethodBuilder &MethodBuilder::iload(std::uint32_t Slot) {
  return emit(Opcode::ILoad, static_cast<std::int32_t>(Slot));
}
MethodBuilder &MethodBuilder::istore(std::uint32_t Slot) {
  return emit(Opcode::IStore, static_cast<std::int32_t>(Slot));
}
MethodBuilder &MethodBuilder::dload(std::uint32_t Slot) {
  return emit(Opcode::DLoad, static_cast<std::int32_t>(Slot));
}
MethodBuilder &MethodBuilder::dstore(std::uint32_t Slot) {
  return emit(Opcode::DStore, static_cast<std::int32_t>(Slot));
}
MethodBuilder &MethodBuilder::aload(std::uint32_t Slot) {
  return emit(Opcode::ALoad, static_cast<std::int32_t>(Slot));
}
MethodBuilder &MethodBuilder::astore(std::uint32_t Slot) {
  return emit(Opcode::AStore, static_cast<std::int32_t>(Slot));
}

MethodBuilder &MethodBuilder::iadd() { return emit(Opcode::IAdd); }
MethodBuilder &MethodBuilder::isub() { return emit(Opcode::ISub); }
MethodBuilder &MethodBuilder::imul() { return emit(Opcode::IMul); }
MethodBuilder &MethodBuilder::idiv() { return emit(Opcode::IDiv); }
MethodBuilder &MethodBuilder::irem() { return emit(Opcode::IRem); }
MethodBuilder &MethodBuilder::ineg() { return emit(Opcode::INeg); }
MethodBuilder &MethodBuilder::iand_() { return emit(Opcode::IAnd); }
MethodBuilder &MethodBuilder::ior_() { return emit(Opcode::IOr); }
MethodBuilder &MethodBuilder::ixor_() { return emit(Opcode::IXor); }
MethodBuilder &MethodBuilder::ishl() { return emit(Opcode::IShl); }
MethodBuilder &MethodBuilder::ishr() { return emit(Opcode::IShr); }

MethodBuilder &MethodBuilder::dadd() { return emit(Opcode::DAdd); }
MethodBuilder &MethodBuilder::dsub() { return emit(Opcode::DSub); }
MethodBuilder &MethodBuilder::dmul() { return emit(Opcode::DMul); }
MethodBuilder &MethodBuilder::ddiv() { return emit(Opcode::DDiv); }
MethodBuilder &MethodBuilder::dneg() { return emit(Opcode::DNeg); }
MethodBuilder &MethodBuilder::dcmp() { return emit(Opcode::DCmp); }
MethodBuilder &MethodBuilder::i2d() { return emit(Opcode::I2D); }
MethodBuilder &MethodBuilder::d2i() { return emit(Opcode::D2I); }

MethodBuilder &MethodBuilder::goto_(Label L) {
  return emitJump(Opcode::Goto, L);
}
MethodBuilder &MethodBuilder::ifEqZ(Label L) {
  return emitJump(Opcode::IfEqZ, L);
}
MethodBuilder &MethodBuilder::ifNeZ(Label L) {
  return emitJump(Opcode::IfNeZ, L);
}
MethodBuilder &MethodBuilder::ifLtZ(Label L) {
  return emitJump(Opcode::IfLtZ, L);
}
MethodBuilder &MethodBuilder::ifLeZ(Label L) {
  return emitJump(Opcode::IfLeZ, L);
}
MethodBuilder &MethodBuilder::ifGtZ(Label L) {
  return emitJump(Opcode::IfGtZ, L);
}
MethodBuilder &MethodBuilder::ifGeZ(Label L) {
  return emitJump(Opcode::IfGeZ, L);
}
MethodBuilder &MethodBuilder::ifICmpEq(Label L) {
  return emitJump(Opcode::IfICmpEq, L);
}
MethodBuilder &MethodBuilder::ifICmpNe(Label L) {
  return emitJump(Opcode::IfICmpNe, L);
}
MethodBuilder &MethodBuilder::ifICmpLt(Label L) {
  return emitJump(Opcode::IfICmpLt, L);
}
MethodBuilder &MethodBuilder::ifICmpLe(Label L) {
  return emitJump(Opcode::IfICmpLe, L);
}
MethodBuilder &MethodBuilder::ifICmpGt(Label L) {
  return emitJump(Opcode::IfICmpGt, L);
}
MethodBuilder &MethodBuilder::ifICmpGe(Label L) {
  return emitJump(Opcode::IfICmpGe, L);
}
MethodBuilder &MethodBuilder::ifNull(Label L) {
  return emitJump(Opcode::IfNull, L);
}
MethodBuilder &MethodBuilder::ifNonNull(Label L) {
  return emitJump(Opcode::IfNonNull, L);
}
MethodBuilder &MethodBuilder::ifACmpEq(Label L) {
  return emitJump(Opcode::IfACmpEq, L);
}
MethodBuilder &MethodBuilder::ifACmpNe(Label L) {
  return emitJump(Opcode::IfACmpNe, L);
}

MethodBuilder &MethodBuilder::new_(ClassId C) {
  return emit(Opcode::New, static_cast<std::int32_t>(C.Index));
}
MethodBuilder &MethodBuilder::getfield(FieldId F) {
  return emit(Opcode::GetField, static_cast<std::int32_t>(F.Index));
}
MethodBuilder &MethodBuilder::putfield(FieldId F) {
  return emit(Opcode::PutField, static_cast<std::int32_t>(F.Index));
}
MethodBuilder &MethodBuilder::getstatic(FieldId F) {
  return emit(Opcode::GetStatic, static_cast<std::int32_t>(F.Index));
}
MethodBuilder &MethodBuilder::putstatic(FieldId F) {
  return emit(Opcode::PutStatic, static_cast<std::int32_t>(F.Index));
}
MethodBuilder &MethodBuilder::newarray(ArrayKind K) {
  return emit(Opcode::NewArray, static_cast<std::int32_t>(K));
}
MethodBuilder &MethodBuilder::arraylength() {
  return emit(Opcode::ArrayLength);
}
MethodBuilder &MethodBuilder::aaload() { return emit(Opcode::AALoad); }
MethodBuilder &MethodBuilder::aastore() { return emit(Opcode::AAStore); }
MethodBuilder &MethodBuilder::iaload() { return emit(Opcode::IALoad); }
MethodBuilder &MethodBuilder::iastore() { return emit(Opcode::IAStore); }
MethodBuilder &MethodBuilder::caload() { return emit(Opcode::CALoad); }
MethodBuilder &MethodBuilder::castore() { return emit(Opcode::CAStore); }
MethodBuilder &MethodBuilder::daload() { return emit(Opcode::DALoad); }
MethodBuilder &MethodBuilder::dastore() { return emit(Opcode::DAStore); }

MethodBuilder &MethodBuilder::invokevirtual(MethodId M) {
  return emit(Opcode::InvokeVirtual, static_cast<std::int32_t>(M.Index));
}
MethodBuilder &MethodBuilder::invokespecial(MethodId M) {
  return emit(Opcode::InvokeSpecial, static_cast<std::int32_t>(M.Index));
}
MethodBuilder &MethodBuilder::invokestatic(MethodId M) {
  return emit(Opcode::InvokeStatic, static_cast<std::int32_t>(M.Index));
}
MethodBuilder &MethodBuilder::ret() { return emit(Opcode::Return); }
MethodBuilder &MethodBuilder::iret() { return emit(Opcode::IReturn); }
MethodBuilder &MethodBuilder::dret() { return emit(Opcode::DReturn); }
MethodBuilder &MethodBuilder::aret() { return emit(Opcode::AReturn); }
MethodBuilder &MethodBuilder::athrow() { return emit(Opcode::Throw); }
MethodBuilder &MethodBuilder::monitorenter() {
  return emit(Opcode::MonitorEnter);
}
MethodBuilder &MethodBuilder::monitorexit() {
  return emit(Opcode::MonitorExit);
}

void MethodBuilder::finish() {
  assert(!Finished && "method finished twice");
  MethodInfo &M = PB.program().methodOf(Id);
  for (const Fixup &F : Fixups) {
    if (LabelPcs[F.LabelIdx] < 0)
      jdrag_unreachable("unbound label in method body");
    M.Code[F.Pc].A = static_cast<std::int32_t>(LabelPcs[F.LabelIdx]);
  }
  for (const HandlerFixup &H : HandlerFixups) {
    if (LabelPcs[H.Start] < 0 || LabelPcs[H.End] < 0 || LabelPcs[H.Target] < 0)
      jdrag_unreachable("unbound label in exception handler");
    ExceptionHandler EH;
    EH.Start = static_cast<std::uint32_t>(LabelPcs[H.Start]);
    EH.End = static_cast<std::uint32_t>(LabelPcs[H.End]);
    EH.Target = static_cast<std::uint32_t>(LabelPcs[H.Target]);
    EH.CatchType = H.Type;
    M.Handlers.push_back(EH);
  }
  Finished = true;
}

//===----------------------------------------------------------------------===//
// ClassBuilder
//===----------------------------------------------------------------------===//

ClassBuilder &ClassBuilder::setLibrary(bool IsLibrary) {
  PB.program().classOf(Id).IsLibrary = IsLibrary;
  return *this;
}

FieldId ClassBuilder::addField(std::string_view Name, ValueKind Kind,
                               Visibility Vis, bool IsStatic, bool IsFinal) {
  assert(Kind != ValueKind::Void && "fields cannot be void");
  Program &P = PB.program();
  FieldInfo F;
  F.Id = FieldId(static_cast<std::uint32_t>(P.Fields.size()));
  F.Owner = Id;
  F.Name = std::string(Name);
  F.Kind = Kind;
  F.IsStatic = IsStatic;
  F.IsFinal = IsFinal;
  F.Vis = Vis;
  F.DeclLine = PB.NextLine++;
  P.Fields.push_back(F);
  ClassInfo &C = P.classOf(Id);
  if (IsStatic)
    C.DeclaredStaticFields.push_back(F.Id);
  else
    C.DeclaredInstanceFields.push_back(F.Id);
  return F.Id;
}

MethodBuilder ClassBuilder::beginMethod(std::string_view Name,
                                        std::vector<ValueKind> Params,
                                        ValueKind Ret, bool IsStatic,
                                        Visibility Vis) {
  Program &P = PB.program();
  MethodInfo M;
  M.Id = MethodId(static_cast<std::uint32_t>(P.Methods.size()));
  M.Owner = Id;
  M.Name = std::string(Name);
  M.Params = std::move(Params);
  M.Ret = Ret;
  M.IsStatic = IsStatic;
  M.Vis = Vis;
  M.IsConstructor = (Name == "<init>");
  M.IsFinalizer =
      (Name == "finalize" && !IsStatic && M.Params.empty() &&
       Ret == ValueKind::Void);
  assert(!(M.IsConstructor && IsStatic) && "constructors are instance methods");
  // Parameter slots: receiver first for instance methods.
  if (!IsStatic)
    M.LocalKinds.push_back(ValueKind::Ref);
  for (ValueKind K : M.Params)
    M.LocalKinds.push_back(K);
  M.DeclLine = PB.NextLine++;
  P.Methods.push_back(M);
  P.classOf(Id).DeclaredMethods.push_back(M.Id);
  return MethodBuilder(PB, M.Id);
}

MethodId ClassBuilder::addNativeMethod(std::string_view Name,
                                       NativeId Native) {
  Program &P = PB.program();
  assert(Native.isValid() && Native.Index < P.Natives.size() &&
         "unknown native");
  const NativeInfo &N = P.nativeOf(Native);
  MethodInfo M;
  M.Id = MethodId(static_cast<std::uint32_t>(P.Methods.size()));
  M.Owner = Id;
  M.Name = std::string(Name);
  M.Params = N.Params;
  M.Ret = N.Ret;
  M.IsStatic = true;
  M.IsNative = true;
  M.Native = Native;
  M.LocalKinds = N.Params;
  M.DeclLine = PB.NextLine++;
  P.Methods.push_back(M);
  P.classOf(Id).DeclaredMethods.push_back(M.Id);
  return M.Id;
}

//===----------------------------------------------------------------------===//
// ProgramBuilder
//===----------------------------------------------------------------------===//

ProgramBuilder::ProgramBuilder() : P(std::make_unique<Program>()) {
  // java/lang/Object.
  {
    ClassInfo C;
    C.Id = ClassId(0);
    C.Name = "java/lang/Object";
    C.IsLibrary = true;
    C.DeclLine = NextLine++;
    P->Classes.push_back(C);
    P->ObjectClass = C.Id;
  }
  // Object.<init>: trivial constructor (just returns).
  {
    ClassBuilder CB(*this, P->ObjectClass);
    MethodBuilder M =
        CB.beginMethod("<init>", {}, ValueKind::Void, /*IsStatic=*/false);
    M.ret();
    M.finish();
    ObjectInit = M.id();
  }
  // java/lang/Throwable and java/lang/OutOfMemoryError.
  {
    ClassBuilder T = beginClass("java/lang/Throwable", P->ObjectClass,
                                /*IsLibrary=*/true);
    MethodBuilder TI =
        T.beginMethod("<init>", {}, ValueKind::Void, /*IsStatic=*/false);
    TI.aload(0).invokespecial(ObjectInit).ret();
    TI.finish();
    P->ThrowableClass = T.id();

    ClassBuilder O = beginClass("java/lang/OutOfMemoryError",
                                P->ThrowableClass, /*IsLibrary=*/true);
    MethodId ThrowableInit = P->findDeclaredMethod(T.id(), "<init>");
    MethodBuilder OI =
        O.beginMethod("<init>", {}, ValueKind::Void, /*IsStatic=*/false);
    OI.aload(0).invokespecial(ThrowableInit).ret();
    OI.finish();
    P->OOMClass = O.id();
  }
}

ClassBuilder ProgramBuilder::beginClass(std::string_view Name, ClassId Super,
                                        bool IsLibrary) {
  assert(!Finished && "builder already finished");
  assert(Super.isValid() && Super.Index < P->Classes.size() &&
         "superclass must be declared first");
  assert(!P->findClass(Name).isValid() && "duplicate class name");
  ClassInfo C;
  C.Id = ClassId(static_cast<std::uint32_t>(P->Classes.size()));
  C.Name = std::string(Name);
  C.Super = Super;
  C.IsLibrary = IsLibrary;
  C.DeclLine = NextLine++;
  P->Classes.push_back(C);
  return ClassBuilder(*this, C.Id);
}

NativeId ProgramBuilder::declareNative(std::string_view Name,
                                       std::vector<ValueKind> Params,
                                       ValueKind Ret) {
  NativeInfo N;
  N.Id = NativeId(static_cast<std::uint32_t>(P->Natives.size()));
  N.Name = std::string(Name);
  N.Params = std::move(Params);
  N.Ret = Ret;
  P->Natives.push_back(N);
  return N.Id;
}

void ProgramBuilder::setMain(MethodId M) {
  const MethodInfo &MI = P->methodOf(M);
  assert(MI.IsStatic && MI.Params.empty() && MI.Ret == ValueKind::Void &&
         "main must be static () -> void");
  (void)MI;
  P->MainMethod = M;
}

Program ProgramBuilder::finish() {
  assert(!Finished && "builder finished twice");
  Finished = true;

  // Instance layouts: classes are ordered supers-first by construction.
  for (ClassInfo &C : P->Classes) {
    std::uint32_t Slots = 0;
    std::uint32_t DataBytes = 0;
    if (C.Super.isValid()) {
      const ClassInfo &S = P->classOf(C.Super);
      Slots = S.NumInstanceSlots;
      // Unpadded inherited data bytes; padding is re-applied below so a
      // subclass can pack fields into the super's alignment slack.
      for (ClassId Cur = C.Super; Cur.isValid(); Cur = P->classOf(Cur).Super)
        for (FieldId F : P->classOf(Cur).DeclaredInstanceFields)
          DataBytes += fieldBytes(P->fieldOf(F).Kind);
    }
    for (FieldId FId : C.DeclaredInstanceFields) {
      FieldInfo &F = P->Fields[FId.Index];
      F.Slot = Slots++;
      DataBytes += fieldBytes(F.Kind);
    }
    C.NumInstanceSlots = Slots;
    C.InstanceAccountedBytes = alignTo8(ObjectHeaderBytes + DataBytes);
  }

  // Static slots.
  std::uint32_t StaticSlot = 0;
  for (ClassInfo &C : P->Classes)
    for (FieldId FId : C.DeclaredStaticFields)
      P->Fields[FId.Index].Slot = StaticSlot++;
  P->NumStaticSlots = StaticSlot;

  // VTables: virtual = instance, non-constructor, non-private.
  for (ClassInfo &C : P->Classes) {
    if (C.Super.isValid()) {
      const ClassInfo &S = P->classOf(C.Super);
      C.VTable = S.VTable;
      C.Finalizer = S.Finalizer;
    }
    for (MethodId MId : C.DeclaredMethods) {
      MethodInfo &M = P->Methods[MId.Index];
      if (M.IsStatic || M.IsConstructor || M.Vis == Visibility::Private)
        continue;
      // Override: same name in an existing vtable slot.
      std::int32_t Slot = -1;
      for (std::uint32_t I = 0, E = static_cast<std::uint32_t>(C.VTable.size());
           I != E; ++I) {
        const MethodInfo &Existing = P->methodOf(C.VTable[I]);
        if (Existing.Name == M.Name) {
          assert(Existing.Params.size() == M.Params.size() &&
                 Existing.Ret == M.Ret && "override signature mismatch");
          Slot = static_cast<std::int32_t>(I);
          break;
        }
      }
      if (Slot < 0) {
        Slot = static_cast<std::int32_t>(C.VTable.size());
        C.VTable.push_back(MId);
      } else {
        C.VTable[static_cast<std::uint32_t>(Slot)] = MId;
      }
      M.VTableSlot = Slot;
      if (M.IsFinalizer)
        C.Finalizer = MId;
    }
  }

  return std::move(*P);
}
