//===- ir/Program.cpp -----------------------------------------------------===//

#include "ir/Program.h"

#include "support/ErrorHandling.h"

using namespace jdrag;
using namespace jdrag::ir;

const char *jdrag::ir::visibilityName(Visibility V) {
  switch (V) {
  case Visibility::Private:
    return "private";
  case Visibility::Package:
    return "package";
  case Visibility::Protected:
    return "protected";
  case Visibility::Public:
    return "public";
  }
  jdrag_unreachable("unknown visibility");
}

const char *jdrag::ir::valueKindName(ValueKind K) {
  switch (K) {
  case ValueKind::Void:
    return "void";
  case ValueKind::Int:
    return "int";
  case ValueKind::Double:
    return "double";
  case ValueKind::Ref:
    return "ref";
  }
  jdrag_unreachable("unknown value kind");
}

const char *jdrag::ir::arrayKindName(ArrayKind K) {
  switch (K) {
  case ArrayKind::Char:
    return "char[]";
  case ArrayKind::Int:
    return "int[]";
  case ArrayKind::Double:
    return "double[]";
  case ArrayKind::Ref:
    return "ref[]";
  }
  jdrag_unreachable("unknown array kind");
}

bool Program::isSubclassOf(ClassId Sub, ClassId Super) const {
  while (Sub.isValid()) {
    if (Sub == Super)
      return true;
    Sub = classOf(Sub).Super;
  }
  return false;
}

ClassId Program::findClass(std::string_view Name) const {
  for (const ClassInfo &C : Classes)
    if (C.Name == Name)
      return C.Id;
  return ClassId();
}

MethodId Program::findDeclaredMethod(ClassId C, std::string_view Name) const {
  for (MethodId M : classOf(C).DeclaredMethods)
    if (methodOf(M).Name == Name)
      return M;
  return MethodId();
}

MethodId Program::findMethod(ClassId C, std::string_view Name) const {
  for (ClassId Cur = C; Cur.isValid(); Cur = classOf(Cur).Super) {
    MethodId M = findDeclaredMethod(Cur, Name);
    if (M.isValid())
      return M;
  }
  return MethodId();
}

FieldId Program::findField(ClassId C, std::string_view Name) const {
  for (ClassId Cur = C; Cur.isValid(); Cur = classOf(Cur).Super) {
    const ClassInfo &CI = classOf(Cur);
    for (FieldId F : CI.DeclaredInstanceFields)
      if (fieldOf(F).Name == Name)
        return F;
    for (FieldId F : CI.DeclaredStaticFields)
      if (fieldOf(F).Name == Name)
        return F;
  }
  return FieldId();
}

std::string Program::qualifiedMethodName(MethodId Id) const {
  const MethodInfo &M = methodOf(Id);
  return classOf(M.Owner).Name + "." + M.Name;
}

std::string Program::qualifiedFieldName(FieldId Id) const {
  const FieldInfo &F = fieldOf(Id);
  return classOf(F.Owner).Name + "." + F.Name;
}

std::uint64_t Program::countInstructions(bool ApplicationOnly) const {
  std::uint64_t N = 0;
  for (const MethodInfo &M : Methods) {
    if (ApplicationOnly && classOf(M.Owner).IsLibrary)
      continue;
    N += M.Code.size();
  }
  return N;
}

std::uint32_t Program::countClasses(bool ApplicationOnly) const {
  if (!ApplicationOnly)
    return static_cast<std::uint32_t>(Classes.size());
  std::uint32_t N = 0;
  for (const ClassInfo &C : Classes)
    if (!C.IsLibrary)
      ++N;
  return N;
}
