//===- ir/JasmPrinter.h - Program -> .jasm serializer -----------*- C++ -*-===//
//
// Part of jdrag (PLDI 2001 "Heap Profiling for Space-Efficient Java").
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The inverse of the assembler: serializes a Program into .jasm text
/// that assembleProgram() accepts and that reproduces the program
/// structurally — the same classes, fields, signatures, instruction
/// streams (opcode by opcode, pc by pc) and exception-handler tables.
/// Only source line numbers differ, since those come from the text.
///
/// This makes .jasm a durable interchange format: any program built
/// with the C++ ProgramBuilder — including the output of the rewriting
/// passes — can be dumped, inspected, hand-edited and re-assembled.
///
//===----------------------------------------------------------------------===//

#ifndef JDRAG_IR_JASMPRINTER_H
#define JDRAG_IR_JASMPRINTER_H

#include "ir/Program.h"

#include <optional>
#include <string>

namespace jdrag::ir {

/// Serializes \p P to .jasm. Returns nullopt (with a diagnostic in
/// \p Err) for the few programs the grammar cannot express: a class
/// declaring two same-named methods (jasm has no overload syntax), a
/// name containing a jasm separator character, members added to the
/// built-in java/lang classes, or a missing main method.
std::optional<std::string> printProgramAsJasm(const Program &P,
                                              std::string *Err = nullptr);

} // namespace jdrag::ir

#endif // JDRAG_IR_JASMPRINTER_H
