//===- ir/Assembler.cpp ---------------------------------------------------===//

#include "ir/Assembler.h"

#include "ir/ProgramBuilder.h"
#include "ir/Verifier.h"
#include "support/Format.h"

#include <cstdio>
#include <map>
#include <vector>

using namespace jdrag;
using namespace jdrag::ir;

namespace {

struct Line {
  int No = 0;
  std::vector<std::string> Tok;
};

/// Tokenizes: `;` comments, whitespace separation, and '(' ')' ',' as
/// standalone tokens.
std::vector<Line> tokenize(const std::string &Source) {
  std::vector<Line> Lines;
  int No = 0;
  std::size_t Pos = 0;
  while (Pos <= Source.size()) {
    std::size_t Eol = Source.find('\n', Pos);
    std::string Text = Source.substr(
        Pos, Eol == std::string::npos ? std::string::npos : Eol - Pos);
    ++No;
    Pos = Eol == std::string::npos ? Source.size() + 1 : Eol + 1;

    std::size_t Comment = Text.find(';');
    if (Comment != std::string::npos)
      Text.resize(Comment);

    Line L;
    L.No = No;
    std::string Cur;
    auto Flush = [&] {
      if (!Cur.empty()) {
        L.Tok.push_back(Cur);
        Cur.clear();
      }
    };
    for (char C : Text) {
      if (C == ' ' || C == '\t' || C == '\r') {
        Flush();
      } else if (C == '(' || C == ')' || C == ',') {
        Flush();
        L.Tok.push_back(std::string(1, C));
      } else {
        Cur += C;
      }
    }
    Flush();
    if (!L.Tok.empty())
      Lines.push_back(std::move(L));
  }
  return Lines;
}

std::optional<ValueKind> parseKind(const std::string &Tok) {
  if (Tok == "int")
    return ValueKind::Int;
  if (Tok == "double")
    return ValueKind::Double;
  if (Tok == "ref")
    return ValueKind::Ref;
  if (Tok == "void")
    return ValueKind::Void;
  return std::nullopt;
}

std::optional<ArrayKind> parseArrayKind(const std::string &Tok) {
  if (Tok == "char")
    return ArrayKind::Char;
  if (Tok == "int")
    return ArrayKind::Int;
  if (Tok == "double")
    return ArrayKind::Double;
  if (Tok == "ref")
    return ArrayKind::Ref;
  return std::nullopt;
}

std::optional<Visibility> parseVisibility(const std::string &Tok) {
  if (Tok == "private")
    return Visibility::Private;
  if (Tok == "package")
    return Visibility::Package;
  if (Tok == "protected")
    return Visibility::Protected;
  if (Tok == "public")
    return Visibility::Public;
  return std::nullopt;
}

/// The assembler proper. Two passes: declarations, then bodies.
class Assembler {
public:
  explicit Assembler(const std::string &Source) : Lines(tokenize(Source)) {
    for (unsigned I = 0; I != NumOpcodes; ++I)
      Mnemonics[opcodeName(static_cast<Opcode>(I))] =
          static_cast<Opcode>(I);
    // Builder-API-style aliases.
    Mnemonics["ret"] = Opcode::Return;
    Mnemonics["iret"] = Opcode::IReturn;
    Mnemonics["dret"] = Opcode::DReturn;
    Mnemonics["aret"] = Opcode::AReturn;
  }

  std::optional<Program> run(std::string *Err) {
    if (!pass1() || !pass2()) {
      if (Err)
        *Err = Error;
      return std::nullopt;
    }
    if (!MainSeen) {
      if (Err)
        *Err = "missing `main Class.method` directive";
      return std::nullopt;
    }
    Program P = PB.finish();
    std::string VErr;
    if (!verifyProgram(P, &VErr)) {
      if (Err)
        *Err = "verification failed:\n" + VErr;
      return std::nullopt;
    }
    return P;
  }

private:
  bool fail(int LineNo, const std::string &Msg) {
    if (Error.empty())
      Error = formatString("line %d: %s", LineNo, Msg.c_str());
    return false;
  }

  //===--------------------------------------------------------------------==//
  // Pass 1: classes, fields, method signatures, natives.
  //===--------------------------------------------------------------------==//

  /// Parses `( kind name , kind name )` starting at Tok[I]; advances I
  /// past the ')'.
  bool parseParams(const Line &L, std::size_t &I,
                   std::vector<ValueKind> &Kinds,
                   std::vector<std::string> &Names) {
    if (I >= L.Tok.size() || L.Tok[I] != "(")
      return fail(L.No, "expected '('");
    ++I;
    while (I < L.Tok.size() && L.Tok[I] != ")") {
      if (L.Tok[I] == ",") {
        ++I;
        continue;
      }
      auto K = parseKind(L.Tok[I]);
      if (!K || *K == ValueKind::Void)
        return fail(L.No, "bad parameter kind '" + L.Tok[I] + "'");
      if (I + 1 >= L.Tok.size())
        return fail(L.No, "parameter name missing");
      Kinds.push_back(*K);
      Names.push_back(L.Tok[I + 1]);
      I += 2;
    }
    if (I >= L.Tok.size())
      return fail(L.No, "unterminated parameter list");
    ++I; // skip ')'
    return true;
  }

  bool pass1() {
    for (std::size_t LI = 0; LI != Lines.size(); ++LI) {
      const Line &L = Lines[LI];
      const std::string &Head = L.Tok[0];

      if (Head == "native") {
        // native <name> ( kinds ) <ret>
        if (L.Tok.size() < 4)
          return fail(L.No, "malformed native declaration");
        std::size_t I = 2;
        std::vector<ValueKind> Kinds;
        if (L.Tok[I] != "(")
          return fail(L.No, "expected '(' after native name");
        ++I;
        while (I < L.Tok.size() && L.Tok[I] != ")") {
          if (L.Tok[I] == ",") {
            ++I;
            continue;
          }
          auto K = parseKind(L.Tok[I]);
          if (!K || *K == ValueKind::Void)
            return fail(L.No, "bad native parameter kind");
          Kinds.push_back(*K);
          ++I;
        }
        if (I + 1 >= L.Tok.size())
          return fail(L.No, "native return kind missing");
        auto Ret = parseKind(L.Tok[I + 1]);
        if (!Ret)
          return fail(L.No, "bad native return kind");
        Natives[L.Tok[1]] = PB.declareNative(L.Tok[1], Kinds, *Ret);
        continue;
      }

      if (Head == "main") {
        if (L.Tok.size() != 2)
          return fail(L.No, "usage: main Class.method");
        MainRef = L.Tok[1];
        MainLine = L.No;
        MainSeen = true;
        continue;
      }

      if (Head != "class")
        continue; // bodies handled in pass 2

      // class <name> extends <super> [library]
      if (L.Tok.size() < 4 || L.Tok[2] != "extends")
        return fail(L.No, "usage: class Name extends Super [library]");
      ClassId Super = PB.program().findClass(L.Tok[3]);
      if (!Super.isValid())
        return fail(L.No, "unknown superclass '" + L.Tok[3] +
                              "' (supers must be declared first)");
      bool IsLibrary = L.Tok.size() > 4 && L.Tok[4] == "library";
      ClassBuilder CB = PB.beginClass(L.Tok[1], Super, IsLibrary);

      // Class members until the matching `end`.
      for (++LI; LI != Lines.size(); ++LI) {
        const Line &M = Lines[LI];
        const std::string &Kw = M.Tok[0];
        if (Kw == "end")
          break;
        if (Kw == "field") {
          // field <name> <kind> [static] [final] [vis]
          if (M.Tok.size() < 3)
            return fail(M.No, "usage: field name kind [flags]");
          auto K = parseKind(M.Tok[2]);
          if (!K || *K == ValueKind::Void)
            return fail(M.No, "bad field kind");
          bool IsStatic = false, IsFinal = false;
          Visibility Vis = Visibility::Public;
          for (std::size_t I = 3; I < M.Tok.size(); ++I) {
            if (M.Tok[I] == "static")
              IsStatic = true;
            else if (M.Tok[I] == "final")
              IsFinal = true;
            else if (auto V = parseVisibility(M.Tok[I]))
              Vis = *V;
            else
              return fail(M.No, "unknown field flag '" + M.Tok[I] + "'");
          }
          CB.addField(M.Tok[1], *K, Vis, IsStatic, IsFinal);
          continue;
        }
        if (Kw == "nativemethod") {
          if (M.Tok.size() != 3)
            return fail(M.No, "usage: nativemethod name nativeName");
          auto It = Natives.find(M.Tok[2]);
          if (It == Natives.end())
            return fail(M.No, "unknown native '" + M.Tok[2] + "'");
          CB.addNativeMethod(M.Tok[1], It->second);
          continue;
        }
        if (Kw == "method") {
          // method <name> ( params ) <ret> [static] [vis]
          std::size_t I = 2;
          std::vector<ValueKind> Kinds;
          std::vector<std::string> Names;
          if (M.Tok.size() < 2 || !parseParams(M, I, Kinds, Names))
            return fail(M.No, "malformed method signature");
          if (I >= M.Tok.size())
            return fail(M.No, "method return kind missing");
          auto Ret = parseKind(M.Tok[I]);
          if (!Ret)
            return fail(M.No, "bad method return kind");
          ++I;
          bool IsStatic = false;
          Visibility Vis = Visibility::Public;
          for (; I < M.Tok.size(); ++I) {
            if (M.Tok[I] == "static")
              IsStatic = true;
            else if (auto V = parseVisibility(M.Tok[I]))
              Vis = *V;
            else
              return fail(M.No, "unknown method flag '" + M.Tok[I] + "'");
          }
          MethodBuilder MB =
              CB.beginMethod(M.Tok[1], Kinds, *Ret, IsStatic, Vis);
          std::string Key = L.Tok[1] + "." + M.Tok[1];
          if (MethodIndex.count(Key))
            return fail(M.No, "duplicate method " + Key);
          MethodIndex[Key] = Builders.size();
          Builders.push_back(std::move(MB));
          ParamNames.push_back(std::move(Names));
          BodyIsStatic.push_back(IsStatic);
          // Skip the body in this pass.
          int Depth = 1;
          for (++LI; LI != Lines.size(); ++LI) {
            if (Lines[LI].Tok[0] == "end" && --Depth == 0)
              break;
          }
          if (LI == Lines.size())
            return fail(M.No, "method body missing `end`");
          continue;
        }
        return fail(M.No, "unknown class member '" + Kw + "'");
      }
      if (LI == Lines.size())
        return fail(L.No, "class missing `end`");
    }
    return true;
  }

  //===--------------------------------------------------------------------==//
  // Pass 2: method bodies.
  //===--------------------------------------------------------------------==//

  bool resolveClassRef(int LineNo, const std::string &Name, ClassId &Out) {
    Out = PB.program().findClass(Name);
    if (!Out.isValid())
      return fail(LineNo, "unknown class '" + Name + "'");
    return true;
  }

  bool resolveFieldRef(int LineNo, const std::string &Ref, FieldId &Out) {
    std::size_t Dot = Ref.rfind('.');
    if (Dot == std::string::npos)
      return fail(LineNo, "field reference must be Class.field");
    ClassId C;
    if (!resolveClassRef(LineNo, Ref.substr(0, Dot), C))
      return false;
    Out = PB.program().findField(C, Ref.substr(Dot + 1));
    if (!Out.isValid())
      return fail(LineNo, "unknown field '" + Ref + "'");
    return true;
  }

  bool resolveMethodRef(int LineNo, const std::string &Ref, MethodId &Out) {
    std::size_t Dot = Ref.rfind('.');
    if (Dot == std::string::npos)
      return fail(LineNo, "method reference must be Class.method");
    ClassId C;
    if (!resolveClassRef(LineNo, Ref.substr(0, Dot), C))
      return false;
    Out = PB.program().findMethod(C, Ref.substr(Dot + 1));
    if (!Out.isValid())
      return fail(LineNo, "unknown method '" + Ref + "'");
    return true;
  }

  bool pass2() {
    for (std::size_t LI = 0; LI != Lines.size(); ++LI) {
      const Line &L = Lines[LI];
      if (L.Tok[0] != "class")
        continue;
      std::string ClassName = L.Tok[1];
      for (++LI; LI != Lines.size() && Lines[LI].Tok[0] != "end"; ++LI) {
        if (Lines[LI].Tok[0] != "method")
          continue;
        std::string Key = ClassName + "." + Lines[LI].Tok[1];
        std::size_t Idx = MethodIndex.at(Key);
        if (!assembleBody(LI, Idx))
          return false;
        // assembleBody leaves LI on the body's `end`.
      }
    }
    if (MainSeen) {
      MethodId Main;
      if (!resolveMethodRef(MainLine, MainRef, Main))
        return false;
      PB.setMain(Main);
    }
    return true;
  }

  /// Assembles one body; \p LI indexes the `method` line on entry and
  /// the body's `end` line on exit.
  bool assembleBody(std::size_t &LI, std::size_t Idx) {
    MethodBuilder &MB = Builders[Idx];
    std::map<std::string, std::uint32_t> Slots;
    std::uint32_t Next = 0;
    if (!BodyIsStatic[Idx])
      Slots["this"] = Next++;
    for (const std::string &Name : ParamNames[Idx])
      Slots[Name] = Next++;
    std::map<std::string, Label> Labels;
    std::map<std::string, int> *FirstUsePtr = nullptr;
    std::map<std::string, bool> *BoundPtr = nullptr;
    int CurLineNo = 0;
    auto GetLabel = [&](const std::string &Name) {
      auto It = Labels.find(Name);
      if (It != Labels.end())
        return It->second;
      Label Lb = MB.newLabel();
      Labels.emplace(Name, Lb);
      if (FirstUsePtr && !FirstUsePtr->count(Name))
        (*FirstUsePtr)[Name] = CurLineNo;
      if (BoundPtr && !BoundPtr->count(Name))
        (*BoundPtr)[Name] = false;
      return Lb;
    };
    auto GetSlot = [&](int LineNo, const std::string &Name,
                       std::uint32_t &Out) {
      auto It = Slots.find(Name);
      if (It != Slots.end()) {
        Out = It->second;
        return true;
      }
      // Raw slot numbers are also accepted.
      char *End = nullptr;
      unsigned long V = std::strtoul(Name.c_str(), &End, 10);
      if (End && *End == '\0' && End != Name.c_str()) {
        Out = static_cast<std::uint32_t>(V);
        return true;
      }
      return fail(LineNo, "unknown local '" + Name + "'");
    };

    std::map<std::string, int> LabelFirstUse;
    std::map<std::string, bool> LabelBound;
    FirstUsePtr = &LabelFirstUse;
    BoundPtr = &LabelBound;

    for (++LI; LI != Lines.size(); ++LI) {
      const Line &L = Lines[LI];
      CurLineNo = L.No;
      const std::string &Op = L.Tok[0];
      if (Op == "end") {
        for (const auto &[Name, Bound] : LabelBound)
          if (!Bound)
            return fail(LabelFirstUse[Name],
                        "label '" + Name + "' is never bound");
        MB.finish();
        return true;
      }

      MB.stmt();

      // Label binding: `name:`.
      if (Op.size() > 1 && Op.back() == ':') {
        std::string Name = Op.substr(0, Op.size() - 1);
        if (LabelBound.count(Name) && LabelBound[Name])
          return fail(L.No, "label '" + Name + "' bound twice");
        MB.bind(GetLabel(Name));
        LabelBound[Name] = true;
        continue;
      }
      if (Op == "local") {
        if (L.Tok.size() != 3)
          return fail(L.No, "usage: local name kind");
        auto K = parseKind(L.Tok[2]);
        if (!K || *K == ValueKind::Void)
          return fail(L.No, "bad local kind");
        if (Slots.count(L.Tok[1]))
          return fail(L.No, "duplicate local '" + L.Tok[1] + "'");
        Slots[L.Tok[1]] = MB.newLocal(*K);
        continue;
      }
      if (Op == "handler") {
        if (L.Tok.size() < 4)
          return fail(L.No, "usage: handler Lstart Lend Ltarget [Class]");
        ClassId Type;
        if (L.Tok.size() > 4 && !resolveClassRef(L.No, L.Tok[4], Type))
          return false;
        MB.addHandler(GetLabel(L.Tok[1]), GetLabel(L.Tok[2]),
                      GetLabel(L.Tok[3]), Type);
        continue;
      }

      auto MIt = Mnemonics.find(Op);
      if (MIt == Mnemonics.end())
        return fail(L.No, "unknown instruction '" + Op + "'");
      Opcode O = MIt->second;
      auto NeedOperand = [&]() {
        if (L.Tok.size() < 2) {
          fail(L.No, "'" + Op + "' needs an operand");
          return false;
        }
        return true;
      };

      switch (O) {
      case Opcode::IConst: {
        if (!NeedOperand())
          return false;
        MB.iconst(std::strtoll(L.Tok[1].c_str(), nullptr, 0));
        break;
      }
      case Opcode::DConst: {
        if (!NeedOperand())
          return false;
        MB.dconst(std::strtod(L.Tok[1].c_str(), nullptr));
        break;
      }
      case Opcode::ILoad:
      case Opcode::IStore:
      case Opcode::DLoad:
      case Opcode::DStore:
      case Opcode::ALoad:
      case Opcode::AStore: {
        if (!NeedOperand())
          return false;
        std::uint32_t Slot = 0;
        if (!GetSlot(L.No, L.Tok[1], Slot))
          return false;
        switch (O) {
        case Opcode::ILoad: MB.iload(Slot); break;
        case Opcode::IStore: MB.istore(Slot); break;
        case Opcode::DLoad: MB.dload(Slot); break;
        case Opcode::DStore: MB.dstore(Slot); break;
        case Opcode::ALoad: MB.aload(Slot); break;
        default: MB.astore(Slot); break;
        }
        break;
      }
      case Opcode::New: {
        if (!NeedOperand())
          return false;
        ClassId C;
        if (!resolveClassRef(L.No, L.Tok[1], C))
          return false;
        MB.new_(C);
        break;
      }
      case Opcode::NewArray: {
        if (!NeedOperand())
          return false;
        auto K = parseArrayKind(L.Tok[1]);
        if (!K)
          return fail(L.No, "bad array kind '" + L.Tok[1] + "'");
        MB.newarray(*K);
        break;
      }
      case Opcode::GetField:
      case Opcode::PutField:
      case Opcode::GetStatic:
      case Opcode::PutStatic: {
        if (!NeedOperand())
          return false;
        FieldId F;
        if (!resolveFieldRef(L.No, L.Tok[1], F))
          return false;
        switch (O) {
        case Opcode::GetField: MB.getfield(F); break;
        case Opcode::PutField: MB.putfield(F); break;
        case Opcode::GetStatic: MB.getstatic(F); break;
        default: MB.putstatic(F); break;
        }
        break;
      }
      case Opcode::InvokeVirtual:
      case Opcode::InvokeSpecial:
      case Opcode::InvokeStatic: {
        if (!NeedOperand())
          return false;
        MethodId M;
        if (!resolveMethodRef(L.No, L.Tok[1], M))
          return false;
        switch (O) {
        case Opcode::InvokeVirtual: MB.invokevirtual(M); break;
        case Opcode::InvokeSpecial: MB.invokespecial(M); break;
        default: MB.invokestatic(M); break;
        }
        break;
      }
      default: {
        if (isBranch(O)) {
          if (!NeedOperand())
            return false;
          Label Lb = GetLabel(L.Tok[1]);
          switch (O) {
          case Opcode::Goto: MB.goto_(Lb); break;
          case Opcode::IfEqZ: MB.ifEqZ(Lb); break;
          case Opcode::IfNeZ: MB.ifNeZ(Lb); break;
          case Opcode::IfLtZ: MB.ifLtZ(Lb); break;
          case Opcode::IfLeZ: MB.ifLeZ(Lb); break;
          case Opcode::IfGtZ: MB.ifGtZ(Lb); break;
          case Opcode::IfGeZ: MB.ifGeZ(Lb); break;
          case Opcode::IfICmpEq: MB.ifICmpEq(Lb); break;
          case Opcode::IfICmpNe: MB.ifICmpNe(Lb); break;
          case Opcode::IfICmpLt: MB.ifICmpLt(Lb); break;
          case Opcode::IfICmpLe: MB.ifICmpLe(Lb); break;
          case Opcode::IfICmpGt: MB.ifICmpGt(Lb); break;
          case Opcode::IfICmpGe: MB.ifICmpGe(Lb); break;
          case Opcode::IfNull: MB.ifNull(Lb); break;
          case Opcode::IfNonNull: MB.ifNonNull(Lb); break;
          case Opcode::IfACmpEq: MB.ifACmpEq(Lb); break;
          default: MB.ifACmpNe(Lb); break;
          }
          break;
        }
        // Operand-free instructions.
        switch (O) {
        case Opcode::AConstNull: MB.aconstNull(); break;
        case Opcode::Nop: MB.nop(); break;
        case Opcode::Pop: MB.pop(); break;
        case Opcode::Dup: MB.dup(); break;
        case Opcode::Swap: MB.swap(); break;
        case Opcode::IAdd: MB.iadd(); break;
        case Opcode::ISub: MB.isub(); break;
        case Opcode::IMul: MB.imul(); break;
        case Opcode::IDiv: MB.idiv(); break;
        case Opcode::IRem: MB.irem(); break;
        case Opcode::INeg: MB.ineg(); break;
        case Opcode::IAnd: MB.iand_(); break;
        case Opcode::IOr: MB.ior_(); break;
        case Opcode::IXor: MB.ixor_(); break;
        case Opcode::IShl: MB.ishl(); break;
        case Opcode::IShr: MB.ishr(); break;
        case Opcode::DAdd: MB.dadd(); break;
        case Opcode::DSub: MB.dsub(); break;
        case Opcode::DMul: MB.dmul(); break;
        case Opcode::DDiv: MB.ddiv(); break;
        case Opcode::DNeg: MB.dneg(); break;
        case Opcode::DCmp: MB.dcmp(); break;
        case Opcode::I2D: MB.i2d(); break;
        case Opcode::D2I: MB.d2i(); break;
        case Opcode::ArrayLength: MB.arraylength(); break;
        case Opcode::AALoad: MB.aaload(); break;
        case Opcode::AAStore: MB.aastore(); break;
        case Opcode::IALoad: MB.iaload(); break;
        case Opcode::IAStore: MB.iastore(); break;
        case Opcode::CALoad: MB.caload(); break;
        case Opcode::CAStore: MB.castore(); break;
        case Opcode::DALoad: MB.daload(); break;
        case Opcode::DAStore: MB.dastore(); break;
        case Opcode::Return: MB.ret(); break;
        case Opcode::IReturn: MB.iret(); break;
        case Opcode::DReturn: MB.dret(); break;
        case Opcode::AReturn: MB.aret(); break;
        case Opcode::Throw: MB.athrow(); break;
        case Opcode::MonitorEnter: MB.monitorenter(); break;
        case Opcode::MonitorExit: MB.monitorexit(); break;
        default:
          return fail(L.No, "instruction '" + Op + "' not supported here");
        }
        break;
      }
      }
    }
    return fail(Lines.back().No, "method body missing `end`");
  }

  ProgramBuilder PB;
  std::vector<Line> Lines;
  std::map<std::string, Opcode> Mnemonics;
  std::map<std::string, NativeId> Natives;
  std::vector<MethodBuilder> Builders;
  std::vector<std::vector<std::string>> ParamNames;
  std::vector<bool> BodyIsStatic;
  std::map<std::string, std::size_t> MethodIndex;
  std::string MainRef;
  int MainLine = 0;
  bool MainSeen = false;
  std::string Error;
};

} // namespace

std::optional<Program> jdrag::ir::assembleProgram(const std::string &Source,
                                                  std::string *Err) {
  // Builders must be finished before ProgramBuilder::finish(); the
  // Assembler finishes each body as it completes in pass 2.
  Assembler A(Source);
  return A.run(Err);
}

std::optional<Program> jdrag::ir::assembleFile(const std::string &Path,
                                               std::string *Err) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F) {
    if (Err)
      *Err = "cannot open " + Path;
    return std::nullopt;
  }
  std::string Source;
  char Buf[4096];
  std::size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Source.append(Buf, N);
  std::fclose(F);
  return assembleProgram(Source, Err);
}
