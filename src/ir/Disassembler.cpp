//===- ir/Disassembler.cpp ------------------------------------------------===//

#include "ir/Disassembler.h"

#include "support/Format.h"

using namespace jdrag;
using namespace jdrag::ir;

std::string jdrag::ir::disassembleInstruction(const Program &P,
                                              const Instruction &I) {
  std::string Out = opcodeName(I.Op);
  switch (I.Op) {
  case Opcode::IConst:
    Out += formatString(" %lld", static_cast<long long>(I.IVal));
    break;
  case Opcode::DConst:
    Out += formatString(" %g", I.DVal);
    break;
  case Opcode::ILoad:
  case Opcode::IStore:
  case Opcode::DLoad:
  case Opcode::DStore:
  case Opcode::ALoad:
  case Opcode::AStore:
    Out += formatString(" %d", I.A);
    break;
  case Opcode::New:
    Out += " " + P.classOf(ClassId(static_cast<std::uint32_t>(I.A))).Name;
    break;
  case Opcode::NewArray:
    Out += formatString(" %s", arrayKindName(static_cast<ArrayKind>(I.A)));
    break;
  case Opcode::GetField:
  case Opcode::PutField:
  case Opcode::GetStatic:
  case Opcode::PutStatic:
    Out += " " +
           P.qualifiedFieldName(FieldId(static_cast<std::uint32_t>(I.A)));
    break;
  case Opcode::InvokeVirtual:
  case Opcode::InvokeSpecial:
  case Opcode::InvokeStatic:
    Out += " " +
           P.qualifiedMethodName(MethodId(static_cast<std::uint32_t>(I.A)));
    break;
  default:
    if (isBranch(I.Op))
      Out += formatString(" -> %d", I.A);
    break;
  }
  return Out;
}

std::string jdrag::ir::disassembleMethod(const Program &P, MethodId Id) {
  const MethodInfo &M = P.methodOf(Id);
  std::string Out = formatString("%s %s(", valueKindName(M.Ret),
                                 P.qualifiedMethodName(Id).c_str());
  for (std::size_t I = 0, E = M.Params.size(); I != E; ++I) {
    if (I)
      Out += ", ";
    Out += valueKindName(M.Params[I]);
  }
  Out += ")";
  if (M.IsStatic)
    Out += " static";
  if (M.IsNative) {
    Out += formatString(" native #%u\n", M.Native.Index);
    return Out;
  }
  Out += formatString("  [locals %u, maxstack %u]\n", M.numLocals(),
                      M.MaxStack);
  for (std::uint32_t Pc = 0, E = static_cast<std::uint32_t>(M.Code.size());
       Pc != E; ++Pc)
    Out += formatString("  %4u  L%-5u %s\n", Pc, M.Code[Pc].Line,
                        disassembleInstruction(P, M.Code[Pc]).c_str());
  for (const ExceptionHandler &H : M.Handlers)
    Out += formatString(
        "  handler [%u,%u) -> %u catch %s\n", H.Start, H.End, H.Target,
        H.CatchType.isValid() ? P.classOf(H.CatchType).Name.c_str() : "<any>");
  return Out;
}

std::string jdrag::ir::disassembleClass(const Program &P, ClassId Id) {
  const ClassInfo &C = P.classOf(Id);
  std::string Out = formatString(
      "class %s%s", C.Name.c_str(), C.IsLibrary ? " [library]" : "");
  if (C.Super.isValid())
    Out += " extends " + P.classOf(C.Super).Name;
  Out += formatString("  // %u bytes/instance\n", C.InstanceAccountedBytes);
  for (FieldId F : C.DeclaredInstanceFields)
    Out += formatString("  %s %s %s\n", visibilityName(P.fieldOf(F).Vis),
                        valueKindName(P.fieldOf(F).Kind),
                        P.fieldOf(F).Name.c_str());
  for (FieldId F : C.DeclaredStaticFields)
    Out += formatString("  %s static %s %s\n",
                        visibilityName(P.fieldOf(F).Vis),
                        valueKindName(P.fieldOf(F).Kind),
                        P.fieldOf(F).Name.c_str());
  for (MethodId M : C.DeclaredMethods)
    Out += disassembleMethod(P, M);
  return Out;
}

std::string jdrag::ir::disassembleProgram(const Program &P) {
  std::string Out;
  for (const ClassInfo &C : P.Classes) {
    Out += disassembleClass(P, C.Id);
    Out += '\n';
  }
  return Out;
}
