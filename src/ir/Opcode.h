//===- ir/Opcode.h - Bytecode opcode set ------------------------*- C++ -*-===//
//
// Part of jdrag (PLDI 2001 "Heap Profiling for Space-Efficient Java").
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The stack bytecode the mini-JVM interprets. The set mirrors the JVM
/// opcodes the paper's instrumentation hooks (getfield, putfield,
/// invokevirtual, monitorenter/monitorexit, new, ...) plus the arithmetic
/// and control flow needed to express the nine benchmark workloads.
///
//===----------------------------------------------------------------------===//

#ifndef JDRAG_IR_OPCODE_H
#define JDRAG_IR_OPCODE_H

#include <cstdint>

namespace jdrag::ir {

enum class Opcode : std::uint8_t {
  // Constants.
  IConst,     ///< push IVal
  DConst,     ///< push DVal
  AConstNull, ///< push null reference

  // Pure stack manipulation.
  Nop,
  Pop,
  Dup,
  Swap,

  // Locals (A = slot).
  ILoad,
  IStore,
  DLoad,
  DStore,
  ALoad,
  AStore,

  // Integer arithmetic (64-bit in the VM, accounted as Java ints).
  IAdd,
  ISub,
  IMul,
  IDiv,
  IRem,
  INeg,
  IAnd,
  IOr,
  IXor,
  IShl,
  IShr,

  // Double arithmetic.
  DAdd,
  DSub,
  DMul,
  DDiv,
  DNeg,
  DCmp, ///< pops b, a; pushes -1/0/1 as Int

  // Conversions.
  I2D,
  D2I,

  // Control flow (A = target pc).
  Goto,
  IfEqZ,
  IfNeZ,
  IfLtZ,
  IfLeZ,
  IfGtZ,
  IfGeZ,
  IfICmpEq,
  IfICmpNe,
  IfICmpLt,
  IfICmpLe,
  IfICmpGt,
  IfICmpGe,
  IfNull,
  IfNonNull,
  IfACmpEq,
  IfACmpNe,

  // Objects (A = ClassId / FieldId index).
  New,       ///< A = ClassId; pushes fresh uninitialised object
  GetField,  ///< A = FieldId; pops obj, pushes value       [object use]
  PutField,  ///< A = FieldId; pops value, obj              [object use]
  GetStatic, ///< A = FieldId; pushes value
  PutStatic, ///< A = FieldId; pops value

  // Arrays (NewArray: A = ArrayKind; element ops pop index, array).
  NewArray,    ///< pops length; pushes array                [-]
  ArrayLength, ///< pops array; pushes length                [object use]
  AALoad,      ///< ref element load                         [array use]
  AAStore,     ///< ref element store                        [array use]
  IALoad,
  IAStore,
  CALoad,
  CAStore,
  DALoad,
  DAStore,

  // Calls (A = MethodId index).
  InvokeVirtual, ///< dynamic dispatch via vtable slot       [receiver use]
  InvokeSpecial, ///< direct call (constructors, private)    [receiver use]
  InvokeStatic,

  // Returns.
  Return,
  IReturn,
  DReturn,
  AReturn,

  // Exceptions.
  Throw, ///< pops throwable reference                       [object use]

  // Monitors (pop object; no-ops for concurrency, but object uses).
  MonitorEnter,
  MonitorExit,
};

/// Number of distinct opcodes (for tables indexed by opcode).
inline constexpr unsigned NumOpcodes =
    static_cast<unsigned>(Opcode::MonitorExit) + 1;

/// Mnemonic of \p Op.
const char *opcodeName(Opcode Op);

/// True for conditional branches (one-operand and two-operand if-forms).
bool isConditionalBranch(Opcode Op);

/// True for any instruction whose A operand is a branch target
/// (conditional branches and Goto).
bool isBranch(Opcode Op);

/// True if control never falls through to the next instruction
/// (Goto, returns, Throw).
bool isUnconditionalTerminator(Opcode Op);

/// True for the return family.
bool isReturn(Opcode Op);

/// True for instructions the instrumented VM counts as a *use* of the
/// popped receiver/array object (paper section 2.1.1: getfield, putfield,
/// method invocation, monitorenter/monitorexit; array element access and
/// arraylength dereference the array's handle).
bool isObjectUse(Opcode Op);

} // namespace jdrag::ir

#endif // JDRAG_IR_OPCODE_H
