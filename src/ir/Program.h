//===- ir/Program.h - Classes, fields, methods, programs --------*- C++ -*-===//
//
// Part of jdrag (PLDI 2001 "Heap Profiling for Space-Efficient Java").
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The static program model: a closed world of classes (single
/// inheritance from Object), fields, methods with bytecode bodies and
/// exception tables, and native method declarations. Programs are built
/// with ProgramBuilder and are immutable afterwards except through the
/// transformation passes in jdrag::transform.
///
/// Heap accounting follows the paper's instrumented Sun JVM 1.2: an
/// object's length includes an 8-byte header and the padding needed to
/// align the allocation on an 8-byte boundary, and excludes the handle
/// and the profiling trailer (section 2.1.1).
///
//===----------------------------------------------------------------------===//

#ifndef JDRAG_IR_PROGRAM_H
#define JDRAG_IR_PROGRAM_H

#include "ir/Ids.h"
#include "ir/Instruction.h"
#include "ir/Type.h"

#include <cassert>
#include <string>
#include <vector>

namespace jdrag::ir {

/// Java-style access visibility; Table 5 of the paper classifies the
/// rewritten references by this kind.
enum class Visibility : std::uint8_t { Private, Package, Protected, Public };

const char *visibilityName(Visibility V);

/// Accounted header size of a plain object.
inline constexpr std::uint32_t ObjectHeaderBytes = 8;
/// Accounted header size of an array (header + 4-byte length).
inline constexpr std::uint32_t ArrayHeaderBytes = 12;

/// Rounds \p Bytes up to the next 8-byte boundary (allocation alignment).
inline constexpr std::uint32_t alignTo8(std::uint32_t Bytes) {
  return (Bytes + 7u) & ~7u;
}

/// A field declaration. Instance fields get a slot in the object layout;
/// static fields get a global slot in the VM's statics area.
struct FieldInfo {
  FieldId Id;
  ClassId Owner;
  std::string Name;
  ValueKind Kind = ValueKind::Int;
  bool IsStatic = false;
  bool IsFinal = false;
  Visibility Vis = Visibility::Public;
  std::uint32_t Slot = 0; ///< instance slot index, or static slot index
  std::uint32_t DeclLine = 0;
};

/// An exception handler range ([Start, End) in pc space, JVM style).
struct ExceptionHandler {
  std::uint32_t Start = 0;
  std::uint32_t End = 0;    ///< exclusive
  std::uint32_t Target = 0; ///< handler entry pc
  ClassId CatchType;        ///< invalid = catch-all
};

/// A method. Instance methods take the receiver in local slot 0; explicit
/// parameters follow in declaration order. LocalKinds covers all local
/// slots (parameters included) so analyses know which slots hold
/// references without per-point type inference.
struct MethodInfo {
  MethodId Id;
  ClassId Owner;
  std::string Name;
  std::vector<ValueKind> Params; ///< excluding the receiver
  ValueKind Ret = ValueKind::Void;
  bool IsStatic = false;
  Visibility Vis = Visibility::Public;
  bool IsNative = false;
  NativeId Native;
  bool IsConstructor = false;
  bool IsFinalizer = false;
  std::int32_t VTableSlot = -1; ///< >= 0 for virtually dispatched methods
  std::vector<ValueKind> LocalKinds;
  std::vector<Instruction> Code;
  std::vector<ExceptionHandler> Handlers;
  std::uint32_t MaxStack = 0; ///< computed by the Verifier
  std::uint32_t DeclLine = 0;

  /// Number of parameter slots including the receiver, if any.
  std::uint32_t numParamSlots() const {
    return static_cast<std::uint32_t>(Params.size()) + (IsStatic ? 0u : 1u);
  }
  std::uint32_t numLocals() const {
    return static_cast<std::uint32_t>(LocalKinds.size());
  }
};

/// A class. Single inheritance; Object is the root and has an invalid
/// Super id. IsLibrary distinguishes JDK-like support code from
/// application code for the anchor-allocation-site walk (paper
/// section 3.4).
struct ClassInfo {
  ClassId Id;
  std::string Name;
  ClassId Super; ///< invalid for the root class
  bool IsLibrary = false;
  std::vector<FieldId> DeclaredInstanceFields;
  std::vector<FieldId> DeclaredStaticFields;
  std::vector<MethodId> DeclaredMethods;
  std::uint32_t NumInstanceSlots = 0;         ///< including inherited
  std::uint32_t InstanceAccountedBytes = 0;   ///< aligned, incl. header
  std::vector<MethodId> VTable;               ///< resolved dispatch table
  MethodId Finalizer;                         ///< invalid if none in chain
  std::uint32_t DeclLine = 0;
};

/// A native method registration point: the VM binds these names to C++
/// callbacks at run time.
struct NativeInfo {
  NativeId Id;
  std::string Name;
  std::vector<ValueKind> Params;
  ValueKind Ret = ValueKind::Void;
};

/// A whole closed-world program.
class Program {
public:
  std::vector<ClassInfo> Classes;
  std::vector<FieldInfo> Fields;
  std::vector<MethodInfo> Methods;
  std::vector<NativeInfo> Natives;

  ClassId ObjectClass;   ///< root of the hierarchy
  ClassId ThrowableClass;///< root of throwables
  ClassId OOMClass;      ///< OutOfMemoryError (paper section 3.3.3)
  MethodId MainMethod;   ///< static entry point
  std::uint32_t NumStaticSlots = 0;

  const ClassInfo &classOf(ClassId Id) const {
    assert(Id.isValid() && Id.Index < Classes.size() && "bad class id");
    return Classes[Id.Index];
  }
  ClassInfo &classOf(ClassId Id) {
    assert(Id.isValid() && Id.Index < Classes.size() && "bad class id");
    return Classes[Id.Index];
  }
  const FieldInfo &fieldOf(FieldId Id) const {
    assert(Id.isValid() && Id.Index < Fields.size() && "bad field id");
    return Fields[Id.Index];
  }
  const MethodInfo &methodOf(MethodId Id) const {
    assert(Id.isValid() && Id.Index < Methods.size() && "bad method id");
    return Methods[Id.Index];
  }
  MethodInfo &methodOf(MethodId Id) {
    assert(Id.isValid() && Id.Index < Methods.size() && "bad method id");
    return Methods[Id.Index];
  }
  const NativeInfo &nativeOf(NativeId Id) const {
    assert(Id.isValid() && Id.Index < Natives.size() && "bad native id");
    return Natives[Id.Index];
  }

  /// True if \p Sub equals \p Super or derives from it.
  bool isSubclassOf(ClassId Sub, ClassId Super) const;

  /// Finds a class by name; returns an invalid id if absent.
  ClassId findClass(std::string_view Name) const;

  /// Finds a method declared *in* \p C (not inherited) by name.
  MethodId findDeclaredMethod(ClassId C, std::string_view Name) const;

  /// Finds a method by name along the superclass chain of \p C.
  MethodId findMethod(ClassId C, std::string_view Name) const;

  /// Finds a field (instance or static) by name along the chain of \p C.
  FieldId findField(ClassId C, std::string_view Name) const;

  /// "Class.method" for reports.
  std::string qualifiedMethodName(MethodId Id) const;

  /// "Class.field" for reports.
  std::string qualifiedFieldName(FieldId Id) const;

  /// Accounted byte size of an array allocation.
  static std::uint32_t arrayAccountedBytes(ArrayKind K, std::uint32_t Len) {
    return alignTo8(ArrayHeaderBytes + elementBytes(K) * Len);
  }

  /// Total instruction count, optionally restricted to application
  /// (non-library) classes. Stands in for Table 1's statement counts.
  std::uint64_t countInstructions(bool ApplicationOnly) const;

  /// Number of classes, optionally restricted to application classes.
  std::uint32_t countClasses(bool ApplicationOnly) const;
};

} // namespace jdrag::ir

#endif // JDRAG_IR_PROGRAM_H
