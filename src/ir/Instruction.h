//===- ir/Instruction.h - One bytecode instruction --------------*- C++ -*-===//
//
// Part of jdrag (PLDI 2001 "Heap Profiling for Space-Efficient Java").
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Instructions are fixed-size PODs; methods store them in a flat vector
/// and the pc is the vector index. Every instruction carries a source
/// line so the profiler can report "the last line of code at which an
/// object is used" (paper section 3.3.1).
///
//===----------------------------------------------------------------------===//

#ifndef JDRAG_IR_INSTRUCTION_H
#define JDRAG_IR_INSTRUCTION_H

#include "ir/Opcode.h"

#include <cstdint>

namespace jdrag::ir {

/// One bytecode instruction. Operand meaning depends on the opcode:
///  - locals: A = slot
///  - branches: A = target pc
///  - New: A = ClassId index
///  - NewArray: A = ArrayKind
///  - Get/PutField, Get/PutStatic: A = FieldId index
///  - Invoke*: A = MethodId index
///  - IConst: IVal; DConst: DVal
struct Instruction {
  Opcode Op = Opcode::Nop;
  std::uint32_t Line = 0; ///< source line for drag-site reports
  std::int32_t A = 0;
  std::int64_t IVal = 0;
  double DVal = 0.0;
};

} // namespace jdrag::ir

#endif // JDRAG_IR_INSTRUCTION_H
