//===- ir/Disassembler.h - Human-readable IR dumps --------------*- C++ -*-===//
//
// Part of jdrag (PLDI 2001 "Heap Profiling for Space-Efficient Java").
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders methods, classes and whole programs as assembler-style text.
/// The drag reports quote these dumps when pointing at allocation sites.
///
//===----------------------------------------------------------------------===//

#ifndef JDRAG_IR_DISASSEMBLER_H
#define JDRAG_IR_DISASSEMBLER_H

#include "ir/Program.h"

#include <string>

namespace jdrag::ir {

/// One instruction, e.g. "getfield Vector.elems".
std::string disassembleInstruction(const Program &P, const Instruction &I);

/// A full method body with pc and line columns.
std::string disassembleMethod(const Program &P, MethodId M);

/// A class: fields and method bodies.
std::string disassembleClass(const Program &P, ClassId C);

/// The whole program.
std::string disassembleProgram(const Program &P);

} // namespace jdrag::ir

#endif // JDRAG_IR_DISASSEMBLER_H
