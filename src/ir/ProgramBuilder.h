//===- ir/ProgramBuilder.h - Fluent program assembler -----------*- C++ -*-===//
//
// Part of jdrag (PLDI 2001 "Heap Profiling for Space-Efficient Java").
//
//===----------------------------------------------------------------------===//
///
/// \file
/// ProgramBuilder assembles Programs: declare classes (supers first),
/// fields and methods, emit bytecode through MethodBuilder, then call
/// finish() to compute object layouts, static slots and vtables.
///
/// Line numbers model one big source file: the builder hands out
/// monotonically increasing line numbers; MethodBuilder::stmt() starts a
/// new "statement" (a new line). Allocation sites are therefore uniquely
/// identified by (method, line) in reports, like the paper's tool.
///
/// Typical usage:
/// \code
///   ProgramBuilder PB;
///   ClassBuilder C = PB.beginClass("Point", PB.objectClass());
///   FieldId X = C.addField("x", ValueKind::Int);
///   MethodBuilder M = C.beginMethod("getX", {}, ValueKind::Int);
///   M.aload(0).getfield(X).iret();
///   M.finish();
///   Program P = PB.finish();
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef JDRAG_IR_PROGRAMBUILDER_H
#define JDRAG_IR_PROGRAMBUILDER_H

#include "ir/Program.h"

#include <memory>

namespace jdrag::ir {

class ProgramBuilder;
class ClassBuilder;

/// A forward-referenceable branch target inside one method body.
struct Label {
  std::uint32_t Idx = ~static_cast<std::uint32_t>(0);
  bool isValid() const { return Idx != ~static_cast<std::uint32_t>(0); }
};

/// Emits the bytecode body of a single method. Non-copyable; keep it alive
/// until finish().
class MethodBuilder {
public:
  MethodBuilder(MethodBuilder &&) = default;
  MethodBuilder(const MethodBuilder &) = delete;
  MethodBuilder &operator=(const MethodBuilder &) = delete;

  MethodId id() const { return Id; }

  /// Allocates a fresh local slot of kind \p K and returns its index.
  std::uint32_t newLocal(ValueKind K);

  /// Starts a new source statement: subsequent instructions carry a fresh
  /// line number. Returns the new line for tests that pin sites.
  std::uint32_t stmt();

  /// Current source line.
  std::uint32_t line() const { return CurLine; }

  // Labels.
  Label newLabel();
  MethodBuilder &bind(Label L);

  /// Declares an exception handler covering [Start, End) with entry at
  /// \p Target, catching \p Type (invalid id = catch-all).
  MethodBuilder &addHandler(Label Start, Label End, Label Target,
                            ClassId Type = ClassId());

  // Constants and stack.
  MethodBuilder &iconst(std::int64_t V);
  MethodBuilder &dconst(double V);
  MethodBuilder &aconstNull();
  MethodBuilder &nop();
  MethodBuilder &pop();
  MethodBuilder &dup();
  MethodBuilder &swap();

  // Locals.
  MethodBuilder &iload(std::uint32_t Slot);
  MethodBuilder &istore(std::uint32_t Slot);
  MethodBuilder &dload(std::uint32_t Slot);
  MethodBuilder &dstore(std::uint32_t Slot);
  MethodBuilder &aload(std::uint32_t Slot);
  MethodBuilder &astore(std::uint32_t Slot);

  // Integer arithmetic.
  MethodBuilder &iadd();
  MethodBuilder &isub();
  MethodBuilder &imul();
  MethodBuilder &idiv();
  MethodBuilder &irem();
  MethodBuilder &ineg();
  MethodBuilder &iand_();
  MethodBuilder &ior_();
  MethodBuilder &ixor_();
  MethodBuilder &ishl();
  MethodBuilder &ishr();

  // Double arithmetic and conversions.
  MethodBuilder &dadd();
  MethodBuilder &dsub();
  MethodBuilder &dmul();
  MethodBuilder &ddiv();
  MethodBuilder &dneg();
  MethodBuilder &dcmp();
  MethodBuilder &i2d();
  MethodBuilder &d2i();

  // Control flow.
  MethodBuilder &goto_(Label L);
  MethodBuilder &ifEqZ(Label L);
  MethodBuilder &ifNeZ(Label L);
  MethodBuilder &ifLtZ(Label L);
  MethodBuilder &ifLeZ(Label L);
  MethodBuilder &ifGtZ(Label L);
  MethodBuilder &ifGeZ(Label L);
  MethodBuilder &ifICmpEq(Label L);
  MethodBuilder &ifICmpNe(Label L);
  MethodBuilder &ifICmpLt(Label L);
  MethodBuilder &ifICmpLe(Label L);
  MethodBuilder &ifICmpGt(Label L);
  MethodBuilder &ifICmpGe(Label L);
  MethodBuilder &ifNull(Label L);
  MethodBuilder &ifNonNull(Label L);
  MethodBuilder &ifACmpEq(Label L);
  MethodBuilder &ifACmpNe(Label L);

  // Objects and arrays.
  MethodBuilder &new_(ClassId C);
  MethodBuilder &getfield(FieldId F);
  MethodBuilder &putfield(FieldId F);
  MethodBuilder &getstatic(FieldId F);
  MethodBuilder &putstatic(FieldId F);
  MethodBuilder &newarray(ArrayKind K);
  MethodBuilder &arraylength();
  MethodBuilder &aaload();
  MethodBuilder &aastore();
  MethodBuilder &iaload();
  MethodBuilder &iastore();
  MethodBuilder &caload();
  MethodBuilder &castore();
  MethodBuilder &daload();
  MethodBuilder &dastore();

  // Calls and returns.
  MethodBuilder &invokevirtual(MethodId M);
  MethodBuilder &invokespecial(MethodId M);
  MethodBuilder &invokestatic(MethodId M);
  MethodBuilder &ret();
  MethodBuilder &iret();
  MethodBuilder &dret();
  MethodBuilder &aret();

  // Exceptions and monitors.
  MethodBuilder &athrow();
  MethodBuilder &monitorenter();
  MethodBuilder &monitorexit();

  /// Resolves labels into pc operands and seals the body. Must be called
  /// exactly once; aborts on unbound labels.
  void finish();

private:
  friend class ClassBuilder;
  MethodBuilder(ProgramBuilder &PB, MethodId Id);

  MethodBuilder &emit(Opcode Op, std::int32_t A = 0, std::int64_t IVal = 0,
                      double DVal = 0.0);
  MethodBuilder &emitJump(Opcode Op, Label L);

  ProgramBuilder &PB;
  MethodId Id;
  std::uint32_t CurLine;
  bool Finished = false;

  // Label bookkeeping: LabelPcs[i] is the bound pc of label i, or -1.
  std::vector<std::int64_t> LabelPcs;
  struct Fixup {
    std::uint32_t Pc;
    std::uint32_t LabelIdx;
  };
  std::vector<Fixup> Fixups;
  struct HandlerFixup {
    std::uint32_t Start, End, Target; ///< label indices
    ClassId Type;
  };
  std::vector<HandlerFixup> HandlerFixups;
};

/// Declares the members of one class.
class ClassBuilder {
public:
  ClassId id() const { return Id; }

  ClassBuilder &setLibrary(bool IsLibrary);

  /// Adds an instance or static field.
  FieldId addField(std::string_view Name, ValueKind Kind,
                   Visibility Vis = Visibility::Public, bool IsStatic = false,
                   bool IsFinal = false);

  /// Begins a bytecode method. A method named "<init>" becomes a
  /// constructor; "finalize" (instance, no params, void) becomes the
  /// class's finalizer.
  MethodBuilder beginMethod(std::string_view Name,
                            std::vector<ValueKind> Params, ValueKind Ret,
                            bool IsStatic = false,
                            Visibility Vis = Visibility::Public);

  /// Adds a native method (always static in jdrag). The signature is
  /// taken from the native declaration.
  MethodId addNativeMethod(std::string_view Name, NativeId Native);

private:
  friend class ProgramBuilder;
  ClassBuilder(ProgramBuilder &PB, ClassId Id) : PB(PB), Id(Id) {}

  ProgramBuilder &PB;
  ClassId Id;
};

/// Builds a whole Program. The root class "java/lang/Object",
/// "java/lang/Throwable" and "java/lang/OutOfMemoryError" (with trivial
/// constructors) are created automatically.
class ProgramBuilder {
public:
  ProgramBuilder();

  ClassId objectClass() const { return P->ObjectClass; }
  ClassId throwableClass() const { return P->ThrowableClass; }
  ClassId oomClass() const { return P->OOMClass; }

  /// Default constructor (<init> on Object) usable by any class whose
  /// constructor just delegates to Object.
  MethodId objectCtor() const { return ObjectInit; }

  /// Begins a class deriving from \p Super (which must already exist).
  ClassBuilder beginClass(std::string_view Name, ClassId Super,
                          bool IsLibrary = false);

  /// Declares a native entry point the VM must bind by name.
  NativeId declareNative(std::string_view Name, std::vector<ValueKind> Params,
                         ValueKind Ret);

  /// Marks \p M as the program entry point (static, no params, void).
  void setMain(MethodId M);

  /// Access to the program under construction (used by builders).
  Program &program() { return *P; }

  /// Computes layouts, static slots and vtables; verifies structural
  /// invariants; returns the finished program. The builder is dead after.
  Program finish();

private:
  friend class ClassBuilder;
  friend class MethodBuilder;

  std::unique_ptr<Program> P;
  MethodId ObjectInit;
  std::uint32_t NextLine = 1;
  bool Finished = false;
};

} // namespace jdrag::ir

#endif // JDRAG_IR_PROGRAMBUILDER_H
