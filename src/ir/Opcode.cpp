//===- ir/Opcode.cpp ------------------------------------------------------===//

#include "ir/Opcode.h"

#include "support/ErrorHandling.h"

using namespace jdrag;
using namespace jdrag::ir;

const char *jdrag::ir::opcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::IConst:
    return "iconst";
  case Opcode::DConst:
    return "dconst";
  case Opcode::AConstNull:
    return "aconst_null";
  case Opcode::Nop:
    return "nop";
  case Opcode::Pop:
    return "pop";
  case Opcode::Dup:
    return "dup";
  case Opcode::Swap:
    return "swap";
  case Opcode::ILoad:
    return "iload";
  case Opcode::IStore:
    return "istore";
  case Opcode::DLoad:
    return "dload";
  case Opcode::DStore:
    return "dstore";
  case Opcode::ALoad:
    return "aload";
  case Opcode::AStore:
    return "astore";
  case Opcode::IAdd:
    return "iadd";
  case Opcode::ISub:
    return "isub";
  case Opcode::IMul:
    return "imul";
  case Opcode::IDiv:
    return "idiv";
  case Opcode::IRem:
    return "irem";
  case Opcode::INeg:
    return "ineg";
  case Opcode::IAnd:
    return "iand";
  case Opcode::IOr:
    return "ior";
  case Opcode::IXor:
    return "ixor";
  case Opcode::IShl:
    return "ishl";
  case Opcode::IShr:
    return "ishr";
  case Opcode::DAdd:
    return "dadd";
  case Opcode::DSub:
    return "dsub";
  case Opcode::DMul:
    return "dmul";
  case Opcode::DDiv:
    return "ddiv";
  case Opcode::DNeg:
    return "dneg";
  case Opcode::DCmp:
    return "dcmp";
  case Opcode::I2D:
    return "i2d";
  case Opcode::D2I:
    return "d2i";
  case Opcode::Goto:
    return "goto";
  case Opcode::IfEqZ:
    return "ifeq";
  case Opcode::IfNeZ:
    return "ifne";
  case Opcode::IfLtZ:
    return "iflt";
  case Opcode::IfLeZ:
    return "ifle";
  case Opcode::IfGtZ:
    return "ifgt";
  case Opcode::IfGeZ:
    return "ifge";
  case Opcode::IfICmpEq:
    return "if_icmpeq";
  case Opcode::IfICmpNe:
    return "if_icmpne";
  case Opcode::IfICmpLt:
    return "if_icmplt";
  case Opcode::IfICmpLe:
    return "if_icmple";
  case Opcode::IfICmpGt:
    return "if_icmpgt";
  case Opcode::IfICmpGe:
    return "if_icmpge";
  case Opcode::IfNull:
    return "ifnull";
  case Opcode::IfNonNull:
    return "ifnonnull";
  case Opcode::IfACmpEq:
    return "if_acmpeq";
  case Opcode::IfACmpNe:
    return "if_acmpne";
  case Opcode::New:
    return "new";
  case Opcode::GetField:
    return "getfield";
  case Opcode::PutField:
    return "putfield";
  case Opcode::GetStatic:
    return "getstatic";
  case Opcode::PutStatic:
    return "putstatic";
  case Opcode::NewArray:
    return "newarray";
  case Opcode::ArrayLength:
    return "arraylength";
  case Opcode::AALoad:
    return "aaload";
  case Opcode::AAStore:
    return "aastore";
  case Opcode::IALoad:
    return "iaload";
  case Opcode::IAStore:
    return "iastore";
  case Opcode::CALoad:
    return "caload";
  case Opcode::CAStore:
    return "castore";
  case Opcode::DALoad:
    return "daload";
  case Opcode::DAStore:
    return "dastore";
  case Opcode::InvokeVirtual:
    return "invokevirtual";
  case Opcode::InvokeSpecial:
    return "invokespecial";
  case Opcode::InvokeStatic:
    return "invokestatic";
  case Opcode::Return:
    return "return";
  case Opcode::IReturn:
    return "ireturn";
  case Opcode::DReturn:
    return "dreturn";
  case Opcode::AReturn:
    return "areturn";
  case Opcode::Throw:
    return "athrow";
  case Opcode::MonitorEnter:
    return "monitorenter";
  case Opcode::MonitorExit:
    return "monitorexit";
  }
  jdrag_unreachable("unknown opcode");
}

bool jdrag::ir::isConditionalBranch(Opcode Op) {
  switch (Op) {
  case Opcode::IfEqZ:
  case Opcode::IfNeZ:
  case Opcode::IfLtZ:
  case Opcode::IfLeZ:
  case Opcode::IfGtZ:
  case Opcode::IfGeZ:
  case Opcode::IfICmpEq:
  case Opcode::IfICmpNe:
  case Opcode::IfICmpLt:
  case Opcode::IfICmpLe:
  case Opcode::IfICmpGt:
  case Opcode::IfICmpGe:
  case Opcode::IfNull:
  case Opcode::IfNonNull:
  case Opcode::IfACmpEq:
  case Opcode::IfACmpNe:
    return true;
  default:
    return false;
  }
}

bool jdrag::ir::isBranch(Opcode Op) {
  return Op == Opcode::Goto || isConditionalBranch(Op);
}

bool jdrag::ir::isUnconditionalTerminator(Opcode Op) {
  return Op == Opcode::Goto || Op == Opcode::Throw || isReturn(Op);
}

bool jdrag::ir::isReturn(Opcode Op) {
  switch (Op) {
  case Opcode::Return:
  case Opcode::IReturn:
  case Opcode::DReturn:
  case Opcode::AReturn:
    return true;
  default:
    return false;
  }
}

bool jdrag::ir::isObjectUse(Opcode Op) {
  switch (Op) {
  case Opcode::GetField:
  case Opcode::PutField:
  case Opcode::InvokeVirtual:
  case Opcode::InvokeSpecial:
  case Opcode::MonitorEnter:
  case Opcode::MonitorExit:
  case Opcode::ArrayLength:
  case Opcode::AALoad:
  case Opcode::AAStore:
  case Opcode::IALoad:
  case Opcode::IAStore:
  case Opcode::CALoad:
  case Opcode::CAStore:
  case Opcode::DALoad:
  case Opcode::DAStore:
  case Opcode::Throw:
    return true;
  default:
    return false;
  }
}
