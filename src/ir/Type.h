//===- ir/Type.h - Value kinds and accounted sizes --------------*- C++ -*-===//
//
// Part of jdrag (PLDI 2001 "Heap Profiling for Space-Efficient Java").
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The jdrag IR has three value kinds: Int (a 64-bit integer in the VM,
/// *accounted* as a 4-byte Java int in heap sizes), Double, and Ref
/// (an object handle, accounted as a 4-byte handle-era reference).
/// Array element kinds add Char (2 bytes) so that the paper's juru
/// workload -- 100K-element character arrays occupying 200 KB -- has the
/// same footprint here.
///
//===----------------------------------------------------------------------===//

#ifndef JDRAG_IR_TYPE_H
#define JDRAG_IR_TYPE_H

#include "support/ErrorHandling.h"

#include <cstdint>

namespace jdrag::ir {

/// Kind of a stack/local/field value.
enum class ValueKind : std::uint8_t { Void, Int, Double, Ref };

/// Kind of array elements. Char exists only inside arrays (like Java's
/// char[] in String); scalar chars are Ints.
enum class ArrayKind : std::uint8_t { Char, Int, Double, Ref };

/// Accounted byte size of a field of kind \p K (Java 1.2, 32-bit layout:
/// refs are 4-byte handles).
inline constexpr std::uint32_t fieldBytes(ValueKind K) {
  switch (K) {
  case ValueKind::Int:
    return 4;
  case ValueKind::Double:
    return 8;
  case ValueKind::Ref:
    return 4;
  case ValueKind::Void:
    break;
  }
  return 0;
}

/// Accounted byte size of an array element of kind \p K.
inline constexpr std::uint32_t elementBytes(ArrayKind K) {
  switch (K) {
  case ArrayKind::Char:
    return 2;
  case ArrayKind::Int:
    return 4;
  case ArrayKind::Double:
    return 8;
  case ArrayKind::Ref:
    return 4;
  }
  return 0;
}

/// The ValueKind stored in the VM for elements of kind \p K (Char elements
/// load/store as Ints).
inline constexpr ValueKind elementValueKind(ArrayKind K) {
  switch (K) {
  case ArrayKind::Char:
  case ArrayKind::Int:
    return ValueKind::Int;
  case ArrayKind::Double:
    return ValueKind::Double;
  case ArrayKind::Ref:
    return ValueKind::Ref;
  }
  return ValueKind::Void;
}

const char *valueKindName(ValueKind K);
const char *arrayKindName(ArrayKind K);

} // namespace jdrag::ir

#endif // JDRAG_IR_TYPE_H
