//===- ir/Ids.h - Strongly typed dense ids ----------------------*- C++ -*-===//
//
// Part of jdrag (PLDI 2001 "Heap Profiling for Space-Efficient Java").
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dense, strongly typed ids for classes, fields, methods and natives.
/// All id spaces are per-Program; ids index the Program's tables.
///
//===----------------------------------------------------------------------===//

#ifndef JDRAG_IR_IDS_H
#define JDRAG_IR_IDS_H

#include <cstdint>
#include <functional>

namespace jdrag::ir {

/// A dense id tagged by \p Tag so different id spaces do not mix.
template <typename Tag> struct DenseId {
  static constexpr std::uint32_t InvalidIndex = ~static_cast<std::uint32_t>(0);

  std::uint32_t Index = InvalidIndex;

  constexpr DenseId() = default;
  constexpr explicit DenseId(std::uint32_t Index) : Index(Index) {}

  constexpr bool isValid() const { return Index != InvalidIndex; }

  friend constexpr bool operator==(DenseId A, DenseId B) {
    return A.Index == B.Index;
  }
  friend constexpr bool operator!=(DenseId A, DenseId B) {
    return A.Index != B.Index;
  }
  friend constexpr bool operator<(DenseId A, DenseId B) {
    return A.Index < B.Index;
  }
};

struct ClassTag {};
struct FieldTag {};
struct MethodTag {};
struct NativeTag {};

using ClassId = DenseId<ClassTag>;
using FieldId = DenseId<FieldTag>;
using MethodId = DenseId<MethodTag>;
using NativeId = DenseId<NativeTag>;

} // namespace jdrag::ir

namespace std {
template <typename Tag> struct hash<jdrag::ir::DenseId<Tag>> {
  size_t operator()(jdrag::ir::DenseId<Tag> Id) const {
    return std::hash<std::uint32_t>()(Id.Index);
  }
};
} // namespace std

#endif // JDRAG_IR_IDS_H
