//===- ir/Verifier.cpp ----------------------------------------------------===//

#include "ir/Verifier.h"

#include "support/Format.h"

#include <deque>
#include <optional>

using namespace jdrag;
using namespace jdrag::ir;

namespace {

/// Per-method verification engine.
class MethodVerifier {
public:
  MethodVerifier(const Program &P, MethodInfo &M, std::string &Err)
      : P(P), M(M), Err(Err) {}

  bool run();

private:
  using Stack = std::vector<ValueKind>;

  void error(std::uint32_t Pc, const std::string &Msg) {
    Err += formatString("%s: pc %u: %s\n", P.qualifiedMethodName(M.Id).c_str(),
                        Pc, Msg.c_str());
    Failed = true;
  }

  bool pop(std::uint32_t Pc, Stack &S, ValueKind Want) {
    if (S.empty()) {
      error(Pc, "operand stack underflow");
      return false;
    }
    ValueKind Got = S.back();
    S.pop_back();
    if (Got != Want) {
      error(Pc, formatString("expected %s on stack, found %s",
                             valueKindName(Want), valueKindName(Got)));
      return false;
    }
    return true;
  }

  bool popAny(std::uint32_t Pc, Stack &S) {
    if (S.empty()) {
      error(Pc, "operand stack underflow");
      return false;
    }
    S.pop_back();
    return true;
  }

  bool checkLocal(std::uint32_t Pc, std::int32_t Slot, ValueKind Want) {
    if (Slot < 0 || static_cast<std::uint32_t>(Slot) >= M.numLocals()) {
      error(Pc, formatString("local slot %d out of range", Slot));
      return false;
    }
    if (M.LocalKinds[static_cast<std::uint32_t>(Slot)] != Want) {
      error(Pc, formatString("local slot %d holds %s, opcode wants %s", Slot,
                             valueKindName(M.LocalKinds[Slot]),
                             valueKindName(Want)));
      return false;
    }
    return true;
  }

  bool checkField(std::uint32_t Pc, std::int32_t Idx, bool WantStatic,
                  const FieldInfo *&F) {
    if (Idx < 0 || static_cast<std::size_t>(Idx) >= P.Fields.size()) {
      error(Pc, "field id out of range");
      return false;
    }
    F = &P.Fields[static_cast<std::uint32_t>(Idx)];
    if (F->IsStatic != WantStatic) {
      error(Pc, formatString("field %s static-ness mismatch",
                             F->Name.c_str()));
      return false;
    }
    return true;
  }

  /// Simulates instruction \p Pc over \p S; returns successor pcs, or
  /// nullopt on a verification error.
  std::optional<std::vector<std::uint32_t>> step(std::uint32_t Pc, Stack &S);

  /// Merges \p S into the recorded state at \p Pc, enqueueing it if the
  /// state is new. Reports an error on inconsistent merge.
  void flowTo(std::uint32_t FromPc, std::uint32_t Pc, const Stack &S);

  const Program &P;
  MethodInfo &M;
  std::string &Err;
  bool Failed = false;

  std::vector<std::optional<Stack>> InState;
  std::deque<std::uint32_t> Worklist;
  std::uint32_t MaxDepth = 0;
};

void MethodVerifier::flowTo(std::uint32_t FromPc, std::uint32_t Pc,
                            const Stack &S) {
  if (Pc >= M.Code.size()) {
    error(FromPc, formatString("control flows to out-of-range pc %u", Pc));
    return;
  }
  std::optional<Stack> &Existing = InState[Pc];
  if (!Existing) {
    Existing = S;
    Worklist.push_back(Pc);
    return;
  }
  if (*Existing != S)
    error(Pc, "inconsistent operand stack at merge point");
}

std::optional<std::vector<std::uint32_t>>
MethodVerifier::step(std::uint32_t Pc, Stack &S) {
  const Instruction &I = M.Code[Pc];
  auto Fail = std::nullopt;
  std::vector<std::uint32_t> Next;
  auto FallThrough = [&] { Next.push_back(Pc + 1); };

  switch (I.Op) {
  case Opcode::IConst:
    S.push_back(ValueKind::Int);
    FallThrough();
    break;
  case Opcode::DConst:
    S.push_back(ValueKind::Double);
    FallThrough();
    break;
  case Opcode::AConstNull:
    S.push_back(ValueKind::Ref);
    FallThrough();
    break;
  case Opcode::Nop:
    FallThrough();
    break;
  case Opcode::Pop:
    if (!popAny(Pc, S))
      return Fail;
    FallThrough();
    break;
  case Opcode::Dup: {
    if (S.empty()) {
      error(Pc, "dup on empty stack");
      return Fail;
    }
    S.push_back(S.back());
    FallThrough();
    break;
  }
  case Opcode::Swap: {
    if (S.size() < 2) {
      error(Pc, "swap needs two operands");
      return Fail;
    }
    std::swap(S[S.size() - 1], S[S.size() - 2]);
    FallThrough();
    break;
  }

  case Opcode::ILoad:
    if (!checkLocal(Pc, I.A, ValueKind::Int))
      return Fail;
    S.push_back(ValueKind::Int);
    FallThrough();
    break;
  case Opcode::IStore:
    if (!checkLocal(Pc, I.A, ValueKind::Int) || !pop(Pc, S, ValueKind::Int))
      return Fail;
    FallThrough();
    break;
  case Opcode::DLoad:
    if (!checkLocal(Pc, I.A, ValueKind::Double))
      return Fail;
    S.push_back(ValueKind::Double);
    FallThrough();
    break;
  case Opcode::DStore:
    if (!checkLocal(Pc, I.A, ValueKind::Double) ||
        !pop(Pc, S, ValueKind::Double))
      return Fail;
    FallThrough();
    break;
  case Opcode::ALoad:
    if (!checkLocal(Pc, I.A, ValueKind::Ref))
      return Fail;
    S.push_back(ValueKind::Ref);
    FallThrough();
    break;
  case Opcode::AStore:
    if (!checkLocal(Pc, I.A, ValueKind::Ref) || !pop(Pc, S, ValueKind::Ref))
      return Fail;
    FallThrough();
    break;

  case Opcode::IAdd:
  case Opcode::ISub:
  case Opcode::IMul:
  case Opcode::IDiv:
  case Opcode::IRem:
  case Opcode::IAnd:
  case Opcode::IOr:
  case Opcode::IXor:
  case Opcode::IShl:
  case Opcode::IShr:
    if (!pop(Pc, S, ValueKind::Int) || !pop(Pc, S, ValueKind::Int))
      return Fail;
    S.push_back(ValueKind::Int);
    FallThrough();
    break;
  case Opcode::INeg:
    if (!pop(Pc, S, ValueKind::Int))
      return Fail;
    S.push_back(ValueKind::Int);
    FallThrough();
    break;
  case Opcode::DAdd:
  case Opcode::DSub:
  case Opcode::DMul:
  case Opcode::DDiv:
    if (!pop(Pc, S, ValueKind::Double) || !pop(Pc, S, ValueKind::Double))
      return Fail;
    S.push_back(ValueKind::Double);
    FallThrough();
    break;
  case Opcode::DNeg:
    if (!pop(Pc, S, ValueKind::Double))
      return Fail;
    S.push_back(ValueKind::Double);
    FallThrough();
    break;
  case Opcode::DCmp:
    if (!pop(Pc, S, ValueKind::Double) || !pop(Pc, S, ValueKind::Double))
      return Fail;
    S.push_back(ValueKind::Int);
    FallThrough();
    break;
  case Opcode::I2D:
    if (!pop(Pc, S, ValueKind::Int))
      return Fail;
    S.push_back(ValueKind::Double);
    FallThrough();
    break;
  case Opcode::D2I:
    if (!pop(Pc, S, ValueKind::Double))
      return Fail;
    S.push_back(ValueKind::Int);
    FallThrough();
    break;

  case Opcode::Goto:
    Next.push_back(static_cast<std::uint32_t>(I.A));
    break;
  case Opcode::IfEqZ:
  case Opcode::IfNeZ:
  case Opcode::IfLtZ:
  case Opcode::IfLeZ:
  case Opcode::IfGtZ:
  case Opcode::IfGeZ:
    if (!pop(Pc, S, ValueKind::Int))
      return Fail;
    Next.push_back(static_cast<std::uint32_t>(I.A));
    FallThrough();
    break;
  case Opcode::IfICmpEq:
  case Opcode::IfICmpNe:
  case Opcode::IfICmpLt:
  case Opcode::IfICmpLe:
  case Opcode::IfICmpGt:
  case Opcode::IfICmpGe:
    if (!pop(Pc, S, ValueKind::Int) || !pop(Pc, S, ValueKind::Int))
      return Fail;
    Next.push_back(static_cast<std::uint32_t>(I.A));
    FallThrough();
    break;
  case Opcode::IfNull:
  case Opcode::IfNonNull:
    if (!pop(Pc, S, ValueKind::Ref))
      return Fail;
    Next.push_back(static_cast<std::uint32_t>(I.A));
    FallThrough();
    break;
  case Opcode::IfACmpEq:
  case Opcode::IfACmpNe:
    if (!pop(Pc, S, ValueKind::Ref) || !pop(Pc, S, ValueKind::Ref))
      return Fail;
    Next.push_back(static_cast<std::uint32_t>(I.A));
    FallThrough();
    break;

  case Opcode::New:
    if (I.A < 0 || static_cast<std::size_t>(I.A) >= P.Classes.size()) {
      error(Pc, "class id out of range");
      return Fail;
    }
    S.push_back(ValueKind::Ref);
    FallThrough();
    break;
  case Opcode::GetField: {
    const FieldInfo *F = nullptr;
    if (!checkField(Pc, I.A, /*WantStatic=*/false, F) ||
        !pop(Pc, S, ValueKind::Ref))
      return Fail;
    S.push_back(F->Kind);
    FallThrough();
    break;
  }
  case Opcode::PutField: {
    const FieldInfo *F = nullptr;
    if (!checkField(Pc, I.A, /*WantStatic=*/false, F) ||
        !pop(Pc, S, F->Kind) || !pop(Pc, S, ValueKind::Ref))
      return Fail;
    FallThrough();
    break;
  }
  case Opcode::GetStatic: {
    const FieldInfo *F = nullptr;
    if (!checkField(Pc, I.A, /*WantStatic=*/true, F))
      return Fail;
    S.push_back(F->Kind);
    FallThrough();
    break;
  }
  case Opcode::PutStatic: {
    const FieldInfo *F = nullptr;
    if (!checkField(Pc, I.A, /*WantStatic=*/true, F) || !pop(Pc, S, F->Kind))
      return Fail;
    FallThrough();
    break;
  }

  case Opcode::NewArray:
    if (I.A < 0 || I.A > static_cast<std::int32_t>(ArrayKind::Ref)) {
      error(Pc, "bad array kind");
      return Fail;
    }
    if (!pop(Pc, S, ValueKind::Int))
      return Fail;
    S.push_back(ValueKind::Ref);
    FallThrough();
    break;
  case Opcode::ArrayLength:
    if (!pop(Pc, S, ValueKind::Ref))
      return Fail;
    S.push_back(ValueKind::Int);
    FallThrough();
    break;
  case Opcode::AALoad:
    if (!pop(Pc, S, ValueKind::Int) || !pop(Pc, S, ValueKind::Ref))
      return Fail;
    S.push_back(ValueKind::Ref);
    FallThrough();
    break;
  case Opcode::AAStore:
    if (!pop(Pc, S, ValueKind::Ref) || !pop(Pc, S, ValueKind::Int) ||
        !pop(Pc, S, ValueKind::Ref))
      return Fail;
    FallThrough();
    break;
  case Opcode::IALoad:
  case Opcode::CALoad:
    if (!pop(Pc, S, ValueKind::Int) || !pop(Pc, S, ValueKind::Ref))
      return Fail;
    S.push_back(ValueKind::Int);
    FallThrough();
    break;
  case Opcode::IAStore:
  case Opcode::CAStore:
    if (!pop(Pc, S, ValueKind::Int) || !pop(Pc, S, ValueKind::Int) ||
        !pop(Pc, S, ValueKind::Ref))
      return Fail;
    FallThrough();
    break;
  case Opcode::DALoad:
    if (!pop(Pc, S, ValueKind::Int) || !pop(Pc, S, ValueKind::Ref))
      return Fail;
    S.push_back(ValueKind::Double);
    FallThrough();
    break;
  case Opcode::DAStore:
    if (!pop(Pc, S, ValueKind::Double) || !pop(Pc, S, ValueKind::Int) ||
        !pop(Pc, S, ValueKind::Ref))
      return Fail;
    FallThrough();
    break;

  case Opcode::InvokeVirtual:
  case Opcode::InvokeSpecial:
  case Opcode::InvokeStatic: {
    if (I.A < 0 || static_cast<std::size_t>(I.A) >= P.Methods.size()) {
      error(Pc, "method id out of range");
      return Fail;
    }
    const MethodInfo &Callee = P.Methods[static_cast<std::uint32_t>(I.A)];
    bool WantStatic = I.Op == Opcode::InvokeStatic;
    if (Callee.IsStatic != WantStatic) {
      error(Pc, formatString("call kind/static mismatch for %s",
                             Callee.Name.c_str()));
      return Fail;
    }
    if (I.Op == Opcode::InvokeVirtual && Callee.VTableSlot < 0) {
      error(Pc, formatString("invokevirtual on non-virtual %s",
                             Callee.Name.c_str()));
      return Fail;
    }
    for (auto It = Callee.Params.rbegin(); It != Callee.Params.rend(); ++It)
      if (!pop(Pc, S, *It))
        return Fail;
    if (!Callee.IsStatic && !pop(Pc, S, ValueKind::Ref))
      return Fail;
    if (Callee.Ret != ValueKind::Void)
      S.push_back(Callee.Ret);
    FallThrough();
    break;
  }

  case Opcode::Return:
    if (M.Ret != ValueKind::Void) {
      error(Pc, "void return from non-void method");
      return Fail;
    }
    break;
  case Opcode::IReturn:
    if (M.Ret != ValueKind::Int || !pop(Pc, S, ValueKind::Int)) {
      error(Pc, "ireturn kind mismatch");
      return Fail;
    }
    break;
  case Opcode::DReturn:
    if (M.Ret != ValueKind::Double || !pop(Pc, S, ValueKind::Double)) {
      error(Pc, "dreturn kind mismatch");
      return Fail;
    }
    break;
  case Opcode::AReturn:
    if (M.Ret != ValueKind::Ref || !pop(Pc, S, ValueKind::Ref)) {
      error(Pc, "areturn kind mismatch");
      return Fail;
    }
    break;

  case Opcode::Throw:
    if (!pop(Pc, S, ValueKind::Ref))
      return Fail;
    break;

  case Opcode::MonitorEnter:
  case Opcode::MonitorExit:
    if (!pop(Pc, S, ValueKind::Ref))
      return Fail;
    FallThrough();
    break;
  }

  if (S.size() > MaxDepth)
    MaxDepth = static_cast<std::uint32_t>(S.size());
  return Next;
}

bool MethodVerifier::run() {
  if (M.IsNative) {
    if (!M.Code.empty())
      error(0, "native method has bytecode");
    return !Failed;
  }
  if (M.Code.empty()) {
    error(0, "empty method body");
    return false;
  }
  if (M.numLocals() < M.numParamSlots()) {
    error(0, "fewer locals than parameter slots");
    return false;
  }

  InState.assign(M.Code.size(), std::nullopt);
  InState[0] = Stack();
  Worklist.push_back(0);
  // Seed handler entries: stack = [thrown exception].
  for (const ExceptionHandler &H : M.Handlers) {
    if (H.Target >= M.Code.size() || H.Start > H.End ||
        H.End > M.Code.size()) {
      error(H.Target, "exception handler range out of bounds");
      continue;
    }
    flowTo(H.Target, H.Target, Stack{ValueKind::Ref});
  }

  while (!Worklist.empty() && !Failed) {
    std::uint32_t Pc = Worklist.front();
    Worklist.pop_front();
    Stack S = *InState[Pc];
    auto Succs = step(Pc, S);
    if (!Succs)
      break;
    if (Succs->empty() && !isUnconditionalTerminator(M.Code[Pc].Op) &&
        !Failed)
      error(Pc, "non-terminator with no successors");
    for (std::uint32_t Succ : *Succs) {
      if (Succ >= M.Code.size()) {
        error(Pc, "control falls off the end of the method");
        continue;
      }
      flowTo(Pc, Succ, S);
    }
  }

  M.MaxStack = MaxDepth;
  return !Failed;
}

} // namespace

bool jdrag::ir::verifyMethod(const Program &P, MethodInfo &M,
                             std::string &Err) {
  return MethodVerifier(P, M, Err).run();
}

bool jdrag::ir::verifyProgram(Program &P, std::string *Err) {
  std::string Diags;
  bool OK = true;

  if (!P.MainMethod.isValid()) {
    Diags += "program has no main method\n";
    OK = false;
  }
  for (const ClassInfo &C : P.Classes)
    if (C.Super.isValid() && !(C.Super < C.Id)) {
      Diags += formatString("class %s declared before its superclass\n",
                            C.Name.c_str());
      OK = false;
    }

  for (MethodInfo &M : P.Methods)
    if (!verifyMethod(P, M, Diags))
      OK = false;

  if (Err)
    *Err = Diags;
  return OK;
}
