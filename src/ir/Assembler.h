//===- ir/Assembler.h - Textual IR assembler --------------------*- C++ -*-===//
//
// Part of jdrag (PLDI 2001 "Heap Profiling for Space-Efficient Java").
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses the jdrag assembly language (.jasm) into a Program, so
/// workloads can be written as text instead of C++ builder calls. The
/// language is line-oriented; `;` starts a comment. Example:
///
/// \code
///   native jdrag.emitResult (int) void
///
///   class Sys extends java/lang/Object library
///     nativemethod emit jdrag.emitResult
///   end
///
///   class Counter extends java/lang/Object
///     field value int private
///     method <init> (int start) void
///       aload this
///       invokespecial java/lang/Object.<init>
///       aload this
///       iload start
///       putfield Counter.value
///       ret
///     end
///     method get () int
///       aload this
///       getfield Counter.value
///       iret
///     end
///   end
///
///   class Main extends java/lang/Object
///     method main () void static
///       local c ref
///       new Counter
///       dup
///       iconst 41
///       invokespecial Counter.<init>
///       astore c
///       aload c
///       invokevirtual Counter.get
///       iconst 1
///       iadd
///       invokestatic Sys.emit
///       ret
///     end
///   end
///
///   main Main.main
/// \endcode
///
/// Conveniences: instance methods get an implicit `this` parameter name;
/// parameters are named in the signature; `local <name> <kind>` declares
/// further slots; `<name>:` on its own line binds a label; branches name
/// labels; `handler Lstart Lend Ltarget [ClassName]` declares a
/// try/catch range. Classes, fields and methods may be referenced before
/// their definition (the assembler makes two passes).
///
//===----------------------------------------------------------------------===//

#ifndef JDRAG_IR_ASSEMBLER_H
#define JDRAG_IR_ASSEMBLER_H

#include "ir/Program.h"

#include <optional>
#include <string>

namespace jdrag::ir {

/// Assembles \p Source into a verified Program. On failure returns
/// nullopt and stores a "line N: message" diagnostic into \p Err.
std::optional<Program> assembleProgram(const std::string &Source,
                                       std::string *Err = nullptr);

/// Reads \p Path and assembles it.
std::optional<Program> assembleFile(const std::string &Path,
                                    std::string *Err = nullptr);

} // namespace jdrag::ir

#endif // JDRAG_IR_ASSEMBLER_H
