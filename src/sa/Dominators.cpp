//===- sa/Dominators.cpp --------------------------------------------------===//

#include "sa/Dominators.h"

#include <algorithm>

using namespace jdrag;
using namespace jdrag::sa;

DominatorTree::DominatorTree(const CFG &G) : G(G) {
  std::uint32_t N = static_cast<std::uint32_t>(G.blocks().size());
  IDom.assign(N, Unreached);
  RPOIndex.assign(N, Unreached);

  // Reverse postorder via iterative DFS from the entry block.
  std::vector<std::uint32_t> PostOrder;
  std::vector<std::uint8_t> State(N, 0); // 0 unvisited, 1 open, 2 done
  std::vector<std::pair<std::uint32_t, std::size_t>> Stack;
  Stack.push_back({0, 0});
  State[0] = 1;
  while (!Stack.empty()) {
    auto &[B, NextSucc] = Stack.back();
    const BasicBlock &BB = G.blocks()[B];
    if (NextSucc < BB.Succs.size()) {
      std::uint32_t S = BB.Succs[NextSucc++];
      if (State[S] == 0) {
        State[S] = 1;
        Stack.push_back({S, 0});
      }
      continue;
    }
    State[B] = 2;
    PostOrder.push_back(B);
    Stack.pop_back();
  }
  std::vector<std::uint32_t> RPO(PostOrder.rbegin(), PostOrder.rend());
  for (std::uint32_t I = 0; I != RPO.size(); ++I)
    RPOIndex[RPO[I]] = I;

  auto Intersect = [&](std::uint32_t A, std::uint32_t B) {
    while (A != B) {
      while (RPOIndex[A] > RPOIndex[B])
        A = IDom[A];
      while (RPOIndex[B] > RPOIndex[A])
        B = IDom[B];
    }
    return A;
  };

  IDom[0] = 0;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (std::uint32_t B : RPO) {
      if (B == 0)
        continue;
      std::uint32_t NewIDom = Unreached;
      for (std::uint32_t Pred : G.blocks()[B].Preds) {
        if (IDom[Pred] == Unreached)
          continue;
        NewIDom = NewIDom == Unreached ? Pred : Intersect(NewIDom, Pred);
      }
      if (NewIDom != Unreached && IDom[B] != NewIDom) {
        IDom[B] = NewIDom;
        Changed = true;
      }
    }
  }
}

bool DominatorTree::dominates(std::uint32_t A, std::uint32_t B) const {
  if (IDom[A] == Unreached || IDom[B] == Unreached)
    return false;
  while (true) {
    if (A == B)
      return true;
    if (B == 0)
      return false;
    B = IDom[B];
  }
}

bool DominatorTree::dominatesPc(std::uint32_t PcA, std::uint32_t PcB) const {
  std::uint32_t BA = G.blockOf(PcA), BB = G.blockOf(PcB);
  if (BA == BB)
    return PcA <= PcB;
  return dominates(BA, BB);
}
