//===- sa/Effects.h - Side-effect and exception analysis --------*- C++ -*-===//
//
// Part of jdrag (PLDI 2001 "Heap Profiling for Space-Efficient Java").
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Transitive side-effect summaries per method, the legality oracle for
/// the paper's transformations:
///
///  * Dead code removal (section 3.3.2): "we must guarantee that the
///    constructor is the only code that references the object and that
///    the constructor has no influence on the rest of the program, e.g.,
///    it does not update other objects or static variables and it cannot
///    throw an exception for which there may be a handler."
///  * Lazy allocation (section 3.3.3): "the constructor may not depend on
///    program state, e.g., it must have no parameters ... and it may not
///    read program state ... Also, the constructor may not throw
///    exceptions for which there may be handlers" (only OOM was possible,
///    so they "only had to check that there were no handlers for
///    OUT_OF_MEMORY in the program").
///
/// Java's precise exception model (section 5.5) makes the handler check
/// part of every removal's legality.
///
//===----------------------------------------------------------------------===//

#ifndef JDRAG_SA_EFFECTS_H
#define JDRAG_SA_EFFECTS_H

#include "sa/CallGraph.h"

#include <vector>

namespace jdrag::sa {

/// Transitive effect summary of one method.
struct MethodEffects {
  bool WritesStatic = false;
  /// Writes a field of an object other than `this` or a fresh object
  /// allocated inside the (transitive) callee.
  bool WritesForeignHeap = false;
  /// Reads a static or a field of an object other than `this`/fresh.
  bool ReadsOuterState = false;
  bool CallsNative = false;
  bool Allocates = false; ///< may throw OOM
  bool ThrowsExplicit = false;
  /// User classes possibly thrown (empty unless ThrowsExplicit).
  std::vector<ir::ClassId> ThrownClasses;
  /// An athrow whose operand class could not be resolved.
  bool ThrowsUnknown = false;
};

/// Whole-program effect analysis with fixpoint propagation over the CHA
/// call graph.
class EffectAnalysis {
public:
  EffectAnalysis(const ir::Program &P, const CallGraph &CG);

  const MethodEffects &effects(ir::MethodId M) const {
    return Summaries[M.Index];
  }

  /// Does any reachable method contain a handler that could catch \p C
  /// (or a catch-all)?
  bool programHasHandlerFor(ir::ClassId C) const;

  /// Legality of deleting a call to constructor \p Ctor together with
  /// its allocation: no outward writes, no native calls, no explicit
  /// throws, and any OOM it could raise is uncatchable in this program.
  bool isRemovableCtor(ir::MethodId Ctor) const;

  /// Legality of *delaying* constructor \p Ctor (lazy allocation): it
  /// must additionally take no parameters and read no program state, so
  /// running it later yields the same object.
  bool isStateIndependentCtor(ir::MethodId Ctor) const;

private:
  void summarizeLocal(const ir::MethodInfo &M, MethodEffects &E);

  const ir::Program &P;
  const CallGraph &CG;
  std::vector<MethodEffects> Summaries;
  std::vector<bool> HasCatchAll;
};

} // namespace jdrag::sa

#endif // JDRAG_SA_EFFECTS_H
