//===- sa/Effects.cpp -----------------------------------------------------===//

#include "sa/Effects.h"

#include "sa/StackFlow.h"

#include <algorithm>

using namespace jdrag;
using namespace jdrag::ir;
using namespace jdrag::sa;

namespace {

/// Flow-insensitive fresh-local computation: a local slot is *fresh* if
/// it is not a parameter and every value ever stored into it is a fresh
/// allocation (or null). Loading a fresh slot yields a fresh object, so
/// constructors that build an array in a local before publishing it stay
/// visibly pure.
std::uint64_t computeFreshLocals(const ir::MethodInfo &M,
                                 const StackFlow &SF) {
  if (M.numLocals() > 64)
    return 0;
  std::uint64_t Fresh = 0;
  for (std::uint32_t Slot = M.numParamSlots(), E = M.numLocals(); Slot != E;
       ++Slot)
    if (M.LocalKinds[Slot] == ir::ValueKind::Ref)
      Fresh |= 1ull << Slot;
  for (std::uint32_t Pc = 0, N = static_cast<std::uint32_t>(M.Code.size());
       Pc != N; ++Pc) {
    const ir::Instruction &I = M.Code[Pc];
    if (I.Op != Opcode::AStore || !SF.isReachable(Pc))
      continue;
    StackCell V = SF.operand(Pc, 0);
    bool AllFresh = !V.Top && !V.Origins.empty();
    if (!V.Top)
      for (const StackValue &O : V.Origins)
        if (O.O != StackValue::Origin::New &&
            O.O != StackValue::Origin::Null)
          AllFresh = false;
    if (!AllFresh)
      Fresh &= ~(1ull << static_cast<std::uint32_t>(I.A));
  }
  return Fresh;
}

/// True if every possible origin of \p Cell is `this` (local slot 0 of an
/// instance method that never reassigns slot 0), an object freshly
/// allocated in this method, or a fresh local.
bool isSelfOrFresh(const StackCell &Cell, bool Slot0IsThis,
                   std::uint64_t FreshLocals) {
  if (Cell.Top)
    return false;
  for (const StackValue &V : Cell.Origins) {
    if (V.O == StackValue::Origin::New)
      continue;
    if (V.O == StackValue::Origin::Local && V.Aux == 0 && Slot0IsThis)
      continue;
    if (V.O == StackValue::Origin::Local && V.Aux >= 0 && V.Aux < 64 &&
        ((FreshLocals >> V.Aux) & 1))
      continue;
    return false;
  }
  return !Cell.Origins.empty();
}

/// True if every origin is a fresh allocation (directly or via a fresh
/// local) in this method.
bool isFresh(const StackCell &Cell, std::uint64_t FreshLocals) {
  if (Cell.Top)
    return false;
  for (const StackValue &V : Cell.Origins) {
    if (V.O == StackValue::Origin::New)
      continue;
    if (V.O == StackValue::Origin::Local && V.Aux >= 0 && V.Aux < 64 &&
        ((FreshLocals >> V.Aux) & 1))
      continue;
    return false;
  }
  return !Cell.Origins.empty();
}

void addThrown(MethodEffects &E, ClassId C) {
  if (std::find(E.ThrownClasses.begin(), E.ThrownClasses.end(), C) ==
      E.ThrownClasses.end())
    E.ThrownClasses.push_back(C);
}

} // namespace

EffectAnalysis::EffectAnalysis(const Program &P, const CallGraph &CG)
    : P(P), CG(CG) {
  Summaries.resize(P.Methods.size());
  HasCatchAll.assign(P.Methods.size(), false);

  // Local (intraprocedural) summaries.
  for (MethodId M : CG.reachableMethods()) {
    const MethodInfo &MI = P.methodOf(M);
    MethodEffects &E = Summaries[M.Index];
    if (MI.IsNative) {
      E.CallsNative = true;
      continue;
    }
    summarizeLocal(MI, E);
  }

  // Fixpoint over call edges (effects only grow, so iterate to stable).
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (MethodId M : CG.reachableMethods()) {
      const MethodInfo &MI = P.methodOf(M);
      if (MI.IsNative)
        continue;
      MethodEffects &E = Summaries[M.Index];
      for (const CallSite &CS : CG.callSitesIn(M)) {
        for (MethodId T : CG.targetsOf(M, CS.Pc)) {
          const MethodEffects &TE = Summaries[T.Index];
          auto Merge = [&](bool &Dst, bool Src) {
            if (Src && !Dst) {
              Dst = true;
              Changed = true;
            }
          };
          Merge(E.WritesStatic, TE.WritesStatic);
          Merge(E.WritesForeignHeap, TE.WritesForeignHeap);
          Merge(E.ReadsOuterState, TE.ReadsOuterState);
          Merge(E.CallsNative, TE.CallsNative);
          Merge(E.Allocates, TE.Allocates);
          Merge(E.ThrowsExplicit, TE.ThrowsExplicit);
          Merge(E.ThrowsUnknown, TE.ThrowsUnknown);
          for (ClassId C : TE.ThrownClasses)
            if (std::find(E.ThrownClasses.begin(), E.ThrownClasses.end(),
                          C) == E.ThrownClasses.end()) {
              E.ThrownClasses.push_back(C);
              Changed = true;
            }
        }
      }
    }
  }
}

void EffectAnalysis::summarizeLocal(const MethodInfo &M, MethodEffects &E) {
  // Callee writes to fresh objects are writes to objects the caller never
  // saw; but a callee writing into ITS `this` mutates an object the
  // caller passed. So for summary purposes, only fresh receivers are
  // innocuous when viewed from the caller... unless the method is a
  // constructor, whose defining job is initializing its own `this`
  // (removing the allocation removes those writes with it).
  bool Slot0IsThis = !M.IsStatic;
  for (const Instruction &I : M.Code)
    if ((I.Op == Opcode::AStore || I.Op == Opcode::IStore ||
         I.Op == Opcode::DStore) &&
        I.A == 0)
      Slot0IsThis = false;
  bool TreatThisAsSelf = Slot0IsThis && M.IsConstructor;

  StackFlow SF(P, M);
  std::uint64_t FreshLocals = computeFreshLocals(M, SF);
  for (std::uint32_t Pc = 0, N = static_cast<std::uint32_t>(M.Code.size());
       Pc != N; ++Pc) {
    if (!SF.isReachable(Pc))
      continue;
    const Instruction &I = M.Code[Pc];
    switch (I.Op) {
    case Opcode::New:
    case Opcode::NewArray:
      E.Allocates = true;
      break;
    case Opcode::PutStatic:
      E.WritesStatic = true;
      break;
    case Opcode::GetStatic:
      E.ReadsOuterState = true;
      break;
    case Opcode::PutField:
      if (!isSelfOrFresh(SF.operand(Pc, 1), TreatThisAsSelf, FreshLocals))
        E.WritesForeignHeap = true;
      break;
    case Opcode::GetField:
      if (!isSelfOrFresh(SF.operand(Pc, 1), TreatThisAsSelf, FreshLocals))
        E.ReadsOuterState = true;
      break;
    case Opcode::AAStore:
    case Opcode::IAStore:
    case Opcode::CAStore:
    case Opcode::DAStore:
      if (!isFresh(SF.operand(Pc, 2), FreshLocals))
        E.WritesForeignHeap = true;
      break;
    case Opcode::AALoad:
    case Opcode::IALoad:
    case Opcode::CALoad:
    case Opcode::DALoad:
      if (!isFresh(SF.operand(Pc, 1), FreshLocals))
        E.ReadsOuterState = true;
      break;
    case Opcode::Throw: {
      E.ThrowsExplicit = true;
      StackCell Ex = SF.operand(Pc, 0);
      if (Ex.Top) {
        E.ThrowsUnknown = true;
        break;
      }
      for (const StackValue &V : Ex.Origins) {
        if (V.O == StackValue::Origin::New && V.Aux >= 0 &&
            M.Code[V.DefPc].Op == Opcode::New)
          addThrown(E, ClassId(static_cast<std::uint32_t>(V.Aux)));
        else
          E.ThrowsUnknown = true;
      }
      break;
    }
    default:
      break;
    }
  }

  for (const ExceptionHandler &H : M.Handlers)
    if (!H.CatchType.isValid())
      HasCatchAll[M.Id.Index] = true;
}

bool EffectAnalysis::programHasHandlerFor(ClassId C) const {
  for (MethodId M : CG.reachableMethods())
    for (const ExceptionHandler &H : P.methodOf(M).Handlers) {
      if (!H.CatchType.isValid())
        return true; // catch-all
      if (P.isSubclassOf(C, H.CatchType))
        return true;
    }
  return false;
}

bool EffectAnalysis::isRemovableCtor(MethodId Ctor) const {
  const MethodEffects &E = effects(Ctor);
  if (E.WritesStatic || E.WritesForeignHeap || E.CallsNative ||
      E.ThrowsExplicit || E.ThrowsUnknown)
    return false;
  if (E.Allocates && programHasHandlerFor(P.OOMClass))
    return false;
  return true;
}

bool EffectAnalysis::isStateIndependentCtor(MethodId Ctor) const {
  const MethodInfo &MI = P.methodOf(Ctor);
  if (!MI.Params.empty())
    return false;
  const MethodEffects &E = effects(Ctor);
  return isRemovableCtor(Ctor) && !E.ReadsOuterState;
}
