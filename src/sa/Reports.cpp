//===- sa/Reports.cpp -----------------------------------------------------===//

#include "sa/Reports.h"

#include "support/Format.h"

using namespace jdrag;
using namespace jdrag::ir;
using namespace jdrag::sa;

StaticFindings jdrag::sa::collectStaticFindings(const Program &P,
                                                const CallGraph &CG,
                                                const ValueFlowAnalysis &VFA,
                                                const EffectAnalysis &EA,
                                                bool IncludeLibrary) {
  StaticFindings F;
  auto IsApp = [&](MethodId M) {
    return IncludeLibrary || !P.classOf(P.methodOf(M).Owner).IsLibrary;
  };

  for (const MethodInfo &M : P.Methods)
    if (!CG.isReachable(M.Id) && IsApp(M.Id) && !M.IsNative)
      F.UnreachableMethods.push_back(M.Id);

  for (const AllocSiteInfo &A : VFA.allocations())
    if (VFA.isAllocationDead(A.Method, A.Pc) && IsApp(A.Method))
      F.DeadAllocations.push_back({A.Method, A.Pc});

  for (const MethodInfo &M : P.Methods) {
    if (!M.IsConstructor || !CG.isReachable(M.Id) || !IsApp(M.Id))
      continue;
    if (EA.isRemovableCtor(M.Id))
      F.RemovableCtors.push_back(M.Id);
    if (EA.isStateIndependentCtor(M.Id))
      F.StateIndependentCtors.push_back(M.Id);
  }

  F.ProgramCatchesOOM = EA.programHasHandlerFor(P.OOMClass);
  return F;
}

std::string jdrag::sa::renderStaticFindings(const Program &P,
                                            const StaticFindings &F) {
  std::string Out = "=== static analysis findings (paper section 5) ===\n";
  Out += formatString("unreachable methods (%zu):\n",
                      F.UnreachableMethods.size());
  for (MethodId M : F.UnreachableMethods)
    Out += "  " + P.qualifiedMethodName(M) + "\n";
  Out += formatString("dead allocations (%zu):\n",
                      F.DeadAllocations.size());
  for (auto [M, Pc] : F.DeadAllocations)
    Out += formatString("  %s pc %u (line %u)\n",
                        P.qualifiedMethodName(M).c_str(), Pc,
                        P.methodOf(M).Code[Pc].Line);
  Out += formatString("removable constructors (%zu):\n",
                      F.RemovableCtors.size());
  for (MethodId M : F.RemovableCtors)
    Out += "  " + P.qualifiedMethodName(M) + "\n";
  Out += formatString("state-independent constructors (%zu):\n",
                      F.StateIndependentCtors.size());
  for (MethodId M : F.StateIndependentCtors)
    Out += "  " + P.qualifiedMethodName(M) + "\n";
  Out += formatString("program catches OutOfMemoryError: %s\n",
                      F.ProgramCatchesOOM ? "yes" : "no");
  return Out;
}
