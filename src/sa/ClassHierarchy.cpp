//===- sa/ClassHierarchy.cpp ----------------------------------------------===//

#include "sa/ClassHierarchy.h"

#include "support/Format.h"

using namespace jdrag;
using namespace jdrag::ir;
using namespace jdrag::sa;

ClassHierarchy::ClassHierarchy(const Program &P) : P(P) {
  Direct.resize(P.Classes.size());
  Subtree.resize(P.Classes.size());
  for (const ClassInfo &C : P.Classes)
    if (C.Super.isValid())
      Direct[C.Super.Index].push_back(C.Id);
  // Classes are supers-first, so a reverse sweep accumulates subtrees.
  for (std::uint32_t I = static_cast<std::uint32_t>(P.Classes.size()); I-- > 0;) {
    Subtree[I].push_back(ClassId(I));
    for (ClassId Sub : Direct[I])
      Subtree[I].insert(Subtree[I].end(), Subtree[Sub.Index].begin(),
                        Subtree[Sub.Index].end());
  }
}

std::string ClassHierarchy::renderTree() const {
  std::string Out;
  auto Walk = [&](auto &&Self, ClassId C, unsigned Depth) -> void {
    Out.append(Depth * 2, ' ');
    const ClassInfo &CI = P.classOf(C);
    Out += CI.Name;
    if (CI.IsLibrary)
      Out += " [library]";
    Out += '\n';
    for (ClassId Sub : Direct[C.Index])
      Self(Self, Sub, Depth + 1);
  };
  Walk(Walk, P.ObjectClass, 0);
  return Out;
}

std::string ClassHierarchy::renderDot() const {
  std::string Out = "digraph classes {\n  rankdir=BT;\n";
  for (const ClassInfo &C : P.Classes)
    if (C.Super.isValid())
      Out += formatString("  \"%s\" -> \"%s\";\n", C.Name.c_str(),
                          P.classOf(C.Super).Name.c_str());
  Out += "}\n";
  return Out;
}
