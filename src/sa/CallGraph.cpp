//===- sa/CallGraph.cpp ---------------------------------------------------===//

#include "sa/CallGraph.h"

#include <deque>

using namespace jdrag;
using namespace jdrag::ir;
using namespace jdrag::sa;

CallGraph::CallGraph(const Program &P) : P(P), CH(P) {
  Sites.resize(P.Methods.size());
  for (const MethodInfo &M : P.Methods) {
    for (std::uint32_t Pc = 0, N = static_cast<std::uint32_t>(M.Code.size());
         Pc != N; ++Pc) {
      const Instruction &I = M.Code[Pc];
      if (I.Op == Opcode::InvokeVirtual || I.Op == Opcode::InvokeSpecial ||
          I.Op == Opcode::InvokeStatic)
        Sites[M.Id.Index].push_back(
            {M.Id, Pc, MethodId(static_cast<std::uint32_t>(I.A))});
    }
  }

  // Reachability from main. Instantiating a class with a finalizer makes
  // that finalizer callable (the VM runs it during deep GC).
  ReachableBit.assign(P.Methods.size(), false);
  std::deque<MethodId> Worklist;
  auto Mark = [&](MethodId M) {
    if (!M.isValid() || ReachableBit[M.Index])
      return;
    ReachableBit[M.Index] = true;
    Reachable.push_back(M);
    Worklist.push_back(M);
  };
  Mark(P.MainMethod);
  while (!Worklist.empty()) {
    MethodId M = Worklist.front();
    Worklist.pop_front();
    for (const CallSite &CS : Sites[M.Index])
      for (MethodId T : resolveTargets(CS))
        Mark(T);
    for (const Instruction &I : P.methodOf(M).Code)
      if (I.Op == Opcode::New) {
        ClassId C(static_cast<std::uint32_t>(I.A));
        Mark(P.classOf(C).Finalizer);
      }
  }
}

std::vector<MethodId> CallGraph::resolveTargets(const CallSite &CS) const {
  const MethodInfo &Named = P.methodOf(CS.NamedCallee);
  const Instruction &I = P.methodOf(CS.Caller).Code[CS.Pc];
  if (I.Op != Opcode::InvokeVirtual || Named.VTableSlot < 0)
    return {CS.NamedCallee};
  // CHA: the vtable entry of the named slot in every subclass of the
  // declaring class.
  std::vector<MethodId> Targets;
  std::vector<bool> Seen(P.Methods.size(), false);
  for (ClassId C : CH.subtree(Named.Owner)) {
    const ClassInfo &CI = P.classOf(C);
    std::uint32_t Slot = static_cast<std::uint32_t>(Named.VTableSlot);
    if (Slot >= CI.VTable.size())
      continue;
    MethodId T = CI.VTable[Slot];
    if (!Seen[T.Index]) {
      Seen[T.Index] = true;
      Targets.push_back(T);
    }
  }
  return Targets;
}

std::vector<MethodId> CallGraph::targetsOf(MethodId Caller,
                                           std::uint32_t Pc) const {
  for (const CallSite &CS : Sites[Caller.Index])
    if (CS.Pc == Pc)
      return resolveTargets(CS);
  return {};
}

std::vector<CallSite> CallGraph::callersOf(MethodId M) const {
  std::vector<CallSite> Out;
  for (MethodId Caller : Reachable)
    for (const CallSite &CS : Sites[Caller.Index])
      for (MethodId T : resolveTargets(CS))
        if (T == M) {
          Out.push_back(CS);
          break;
        }
  return Out;
}
