//===- sa/Liveness.cpp ----------------------------------------------------===//

#include "sa/Liveness.h"

#include "sa/CFG.h"

#include <cassert>

using namespace jdrag;
using namespace jdrag::ir;
using namespace jdrag::sa;

namespace {

bool isLocalLoad(Opcode Op) {
  return Op == Opcode::ILoad || Op == Opcode::DLoad || Op == Opcode::ALoad;
}

bool isLocalStore(Opcode Op) {
  return Op == Opcode::IStore || Op == Opcode::DStore || Op == Opcode::AStore;
}

} // namespace

LivenessAnalysis::LivenessAnalysis(const Program &, const MethodInfo &M)
    : M(M) {
  assert(M.numLocals() <= 64 && "LivenessAnalysis supports up to 64 locals");
  std::uint32_t N = static_cast<std::uint32_t>(M.Code.size());
  LiveIn.assign(N, 0);
  LiveOut.assign(N, 0);

  std::vector<std::uint32_t> Succs;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (std::uint32_t Pc = N; Pc-- > 0;) {
      const Instruction &I = M.Code[Pc];
      std::uint64_t Out = 0;
      Succs.clear();
      normalSuccessors(M, Pc, Succs);
      exceptionalSuccessors(M, Pc, Succs);
      for (std::uint32_t S : Succs)
        if (S < N)
          Out |= LiveIn[S];

      std::uint64_t In = Out;
      if (isLocalStore(I.Op))
        In &= ~(1ull << static_cast<std::uint32_t>(I.A));
      else if (isLocalLoad(I.Op))
        In |= 1ull << static_cast<std::uint32_t>(I.A);

      if (Out != LiveOut[Pc] || In != LiveIn[Pc]) {
        LiveOut[Pc] = Out;
        LiveIn[Pc] = In;
        Changed = true;
      }
    }
  }
}

std::vector<std::uint32_t>
LivenessAnalysis::lastUsePcs(std::uint32_t Slot) const {
  std::vector<std::uint32_t> Out;
  for (std::uint32_t Pc = 0, N = static_cast<std::uint32_t>(M.Code.size());
       Pc != N; ++Pc) {
    const Instruction &I = M.Code[Pc];
    if (isLocalLoad(I.Op) && static_cast<std::uint32_t>(I.A) == Slot &&
        !isLiveOut(Pc, Slot))
      Out.push_back(Pc);
  }
  return Out;
}
