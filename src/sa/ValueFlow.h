//===- sa/ValueFlow.h - Usage and indirect-usage analysis -------*- C++ -*-===//
//
// Part of jdrag (PLDI 2001 "Heap Profiling for Space-Efficient Java").
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The whole-program value-flow analysis behind the paper's section 5.1
/// *usage analysis* ("finding variables that are set using side-effect
/// free expressions, but never used") and *indirect-usage analysis* ("an
/// object is never-used if none of its references is ever dereferenced").
///
/// Model: values live in *locations* -- local slots, instance fields
/// (merged over all instances), static fields, per-field array-element
/// buckets, and method returns. Copies between locations form a flow
/// graph; an object-use opcode consuming a value *dereferences* its
/// source location. A location is USED iff it is dereferenced or its
/// value can flow into a used location. An allocation site is DEAD iff
/// the object is never directly used outside its constructor, never
/// escapes (non-constructor call argument, return, unknown store), and
/// every location it is stored into is unused. Dead allocations are the
/// dead-code-removal candidates (legality of removing the constructor is
/// EffectAnalysis's job).
///
/// Only methods reachable in the CHA call graph are analyzed -- the
/// paper's "(R)" refinement: uses in methods that are never invoked do
/// not count (section 5.4, the raytrace getter example).
///
//===----------------------------------------------------------------------===//

#ifndef JDRAG_SA_VALUEFLOW_H
#define JDRAG_SA_VALUEFLOW_H

#include "sa/CallGraph.h"
#include "sa/StackFlow.h"

#include <unordered_map>
#include <vector>

namespace jdrag::sa {

/// An abstract storage location.
struct Location {
  enum class Kind : std::uint8_t {
    Local,        ///< A = method index, B = slot
    InstanceField,///< A = field index
    StaticField,  ///< A = field index
    ArrayOfField, ///< elements of arrays held in field A
    GlobalArray,  ///< elements of arrays of unknown provenance
    Return,       ///< return value of method A
  };

  Kind K = Kind::GlobalArray;
  std::uint32_t A = 0;
  std::uint32_t B = 0;

  static Location local(ir::MethodId M, std::uint32_t Slot) {
    return {Kind::Local, M.Index, Slot};
  }
  static Location field(ir::FieldId F) {
    return {Kind::InstanceField, F.Index, 0};
  }
  static Location staticField(ir::FieldId F) {
    return {Kind::StaticField, F.Index, 0};
  }
  static Location arrayOf(ir::FieldId F) {
    return {Kind::ArrayOfField, F.Index, 0};
  }
  static Location globalArray() { return {Kind::GlobalArray, 0, 0}; }
  static Location ret(ir::MethodId M) { return {Kind::Return, M.Index, 0}; }

  friend bool operator==(const Location &X, const Location &Y) {
    return X.K == Y.K && X.A == Y.A && X.B == Y.B;
  }
};

struct LocationHash {
  std::size_t operator()(const Location &L) const {
    return (static_cast<std::size_t>(L.K) * 0x9e3779b97f4a7c15ULL) ^
           (static_cast<std::size_t>(L.A) << 20) ^ L.B;
  }
};

/// Summary of one `new`/`newarray` site.
struct AllocSiteInfo {
  ir::MethodId Method;
  std::uint32_t Pc = 0;
  bool DirectlyUsed = false; ///< used outside its constructor call
  bool Escaped = false;      ///< non-ctor call arg, return, native, ...
  std::vector<Location> Sinks; ///< locations the object is stored into
  ir::MethodId Ctor;           ///< constructor invoked on it (objects)
  std::uint32_t CtorPc = 0;    ///< pc of that invokespecial
  bool MultipleCtors = false;  ///< more than one ctor call site observed
};

/// The analysis result.
class ValueFlowAnalysis {
public:
  ValueFlowAnalysis(const ir::Program &P, const CallGraph &CG);

  /// Is \p L ever used (dereferenced directly or via copies)?
  bool isLocationUsed(const Location &L) const;

  /// Info for the allocation at (\p M, \p Pc); nullptr if that pc is not
  /// an allocation in a reachable method.
  const AllocSiteInfo *allocAt(ir::MethodId M, std::uint32_t Pc) const;

  /// All allocation sites in reachable methods.
  const std::vector<AllocSiteInfo> &allocations() const { return Allocs; }

  /// True if the object allocated at (\p M, \p Pc) is provably never
  /// used: not directly used, not escaped, all sinks unused. This is the
  /// dead-code-removal candidate test (constructor legality separate).
  bool isAllocationDead(ir::MethodId M, std::uint32_t Pc) const;

  /// Every location the object allocated at (\p M, \p Pc) may flow into,
  /// transitively through copies -- e.g. a call argument local, then the
  /// container array the callee stores it in. The auto-optimizer uses
  /// this to find the holder that keeps a dragged object alive.
  std::vector<Location> transitiveSinks(ir::MethodId M,
                                        std::uint32_t Pc) const;

private:
  void analyzeMethod(const ir::Program &P, const CallGraph &CG,
                     const ir::MethodInfo &M);
  void markUsed(const Location &L);
  void addEdge(const Location &From, const Location &To);
  AllocSiteInfo &allocInfo(ir::MethodId M, std::uint32_t Pc);

  /// Resolves the source location(s) of an abstract stack value; returns
  /// true if the value is location-tracked (fills \p Out), false for
  /// Const/Null/Unknown/New.
  bool sourcesOf(const ir::Program &P, const CallGraph &CG,
                 const ir::MethodInfo &M, const StackValue &V,
                 std::vector<Location> &Out) const;

  std::unordered_map<Location, std::vector<Location>, LocationHash> Edges;
  std::unordered_map<Location, bool, LocationHash> Used;
  std::vector<AllocSiteInfo> Allocs;
  std::unordered_map<std::uint64_t, std::size_t> AllocIndex;
  bool TopEvent = false; ///< a Top cell was used/stored: collapse to "all used"
  bool Solved = false;
  void solve();
};

} // namespace jdrag::sa

#endif // JDRAG_SA_VALUEFLOW_H
