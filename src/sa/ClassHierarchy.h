//===- sa/ClassHierarchy.h - Class hierarchy graph --------------*- C++ -*-===//
//
// Part of jdrag (PLDI 2001 "Heap Profiling for Space-Efficient Java").
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The class hierarchy graph (subclass relation), one of the two JAN
/// artifacts the paper's authors consulted while rewriting code
/// (section 3.2: "we used the class hierarchy graph for accelerating
/// source browsing"). Also the foundation of CHA call-graph construction.
///
//===----------------------------------------------------------------------===//

#ifndef JDRAG_SA_CLASSHIERARCHY_H
#define JDRAG_SA_CLASSHIERARCHY_H

#include "ir/Program.h"

#include <string>
#include <vector>

namespace jdrag::sa {

/// Precomputed subclass sets over a Program.
class ClassHierarchy {
public:
  explicit ClassHierarchy(const ir::Program &P);

  /// Direct subclasses of \p C.
  const std::vector<ir::ClassId> &directSubclasses(ir::ClassId C) const {
    return Direct[C.Index];
  }

  /// \p C and all its transitive subclasses, in id order.
  const std::vector<ir::ClassId> &subtree(ir::ClassId C) const {
    return Subtree[C.Index];
  }

  /// Renders the hierarchy as an indented tree (JAN-style browsing aid).
  std::string renderTree() const;

  /// Renders Graphviz dot.
  std::string renderDot() const;

private:
  const ir::Program &P;
  std::vector<std::vector<ir::ClassId>> Direct;
  std::vector<std::vector<ir::ClassId>> Subtree;
};

} // namespace jdrag::sa

#endif // JDRAG_SA_CLASSHIERARCHY_H
