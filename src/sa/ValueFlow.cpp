//===- sa/ValueFlow.cpp ---------------------------------------------------===//

#include "sa/ValueFlow.h"

#include <deque>

using namespace jdrag;
using namespace jdrag::ir;
using namespace jdrag::sa;

namespace {

std::uint64_t allocKey(MethodId M, std::uint32_t Pc) {
  return (static_cast<std::uint64_t>(M.Index) << 32) | Pc;
}

/// CHA expansion of a statically named callee to all possible overrides.
void expandTargets(const Program &P, const ClassHierarchy &CH, MethodId Named,
                   std::vector<MethodId> &Out) {
  const MethodInfo &NM = P.methodOf(Named);
  if (NM.VTableSlot < 0) {
    Out.push_back(Named);
    return;
  }
  std::uint32_t Slot = static_cast<std::uint32_t>(NM.VTableSlot);
  for (ClassId C : CH.subtree(NM.Owner)) {
    const ClassInfo &CI = P.classOf(C);
    if (Slot < CI.VTable.size()) {
      MethodId T = CI.VTable[Slot];
      bool Seen = false;
      for (MethodId X : Out)
        if (X == T) {
          Seen = true;
          break;
        }
      if (!Seen)
        Out.push_back(T);
    }
  }
}

} // namespace

ValueFlowAnalysis::ValueFlowAnalysis(const Program &P, const CallGraph &CG) {
  for (MethodId M : CG.reachableMethods()) {
    const MethodInfo &MI = P.methodOf(M);
    if (!MI.IsNative)
      analyzeMethod(P, CG, MI);
  }
  solve();
}

AllocSiteInfo &ValueFlowAnalysis::allocInfo(MethodId M, std::uint32_t Pc) {
  auto [It, Fresh] = AllocIndex.try_emplace(allocKey(M, Pc), Allocs.size());
  if (Fresh) {
    Allocs.emplace_back();
    Allocs.back().Method = M;
    Allocs.back().Pc = Pc;
  }
  return Allocs[It->second];
}

const AllocSiteInfo *ValueFlowAnalysis::allocAt(MethodId M,
                                                std::uint32_t Pc) const {
  auto It = AllocIndex.find(allocKey(M, Pc));
  return It == AllocIndex.end() ? nullptr : &Allocs[It->second];
}

void ValueFlowAnalysis::markUsed(const Location &L) { Used[L] = true; }

void ValueFlowAnalysis::addEdge(const Location &From, const Location &To) {
  Edges[From].push_back(To);
}

bool ValueFlowAnalysis::sourcesOf(const Program &P, const CallGraph &CG,
                                  const MethodInfo &M, const StackValue &V,
                                  std::vector<Location> &Out) const {
  switch (V.O) {
  case StackValue::Origin::Local:
    Out.push_back(Location::local(M.Id, static_cast<std::uint32_t>(V.Aux)));
    return true;
  case StackValue::Origin::Field:
    Out.push_back(Location::field(FieldId(static_cast<std::uint32_t>(V.Aux))));
    return true;
  case StackValue::Origin::Static:
    Out.push_back(
        Location::staticField(FieldId(static_cast<std::uint32_t>(V.Aux))));
    return true;
  case StackValue::Origin::ArrayElem:
    Out.push_back(V.Aux >= 0 ? Location::arrayOf(FieldId(
                                   static_cast<std::uint32_t>(V.Aux)))
                             : Location::globalArray());
    return true;
  case StackValue::Origin::CallResult: {
    std::vector<MethodId> Targets;
    expandTargets(P, CG.hierarchy(),
                  MethodId(static_cast<std::uint32_t>(V.Aux)), Targets);
    for (MethodId T : Targets)
      Out.push_back(Location::ret(T));
    return true;
  }
  case StackValue::Origin::New:
  case StackValue::Origin::Const:
  case StackValue::Origin::Null:
  case StackValue::Origin::Caught:
    return false;
  }
  return false;
}

void ValueFlowAnalysis::analyzeMethod(const Program &P, const CallGraph &CG,
                                      const MethodInfo &M) {
  StackFlow SF(P, M);
  std::vector<Location> Srcs;

  // Dereference: every source location of the cell is used; New origins
  // become directly-used (unless this is the object's constructor call).
  auto Deref = [&](const StackCell &Cell, bool IsCtorCall = false,
                   MethodId Ctor = MethodId(), std::uint32_t CtorPc = 0) {
    if (Cell.Top) {
      TopEvent = true;
      return;
    }
    for (const StackValue &V : Cell.Origins) {
      if (V.O == StackValue::Origin::New) {
        AllocSiteInfo &A = allocInfo(M.Id, V.DefPc);
        if (IsCtorCall) {
          if (A.Ctor.isValid() && !(A.Ctor == Ctor && A.CtorPc == CtorPc))
            A.MultipleCtors = true;
          A.Ctor = Ctor;
          A.CtorPc = CtorPc;
        } else {
          A.DirectlyUsed = true;
        }
        continue;
      }
      Srcs.clear();
      if (sourcesOf(P, CG, M, V, Srcs))
        for (const Location &L : Srcs)
          markUsed(L);
    }
  };

  // Copy: edges from every source location into \p Dst; New origins
  // record \p Dst as a sink.
  auto Flow = [&](const StackCell &Cell, const Location &Dst) {
    if (Cell.Top) {
      TopEvent = true;
      return;
    }
    for (const StackValue &V : Cell.Origins) {
      if (V.O == StackValue::Origin::New) {
        allocInfo(M.Id, V.DefPc).Sinks.push_back(Dst);
        continue;
      }
      Srcs.clear();
      if (sourcesOf(P, CG, M, V, Srcs))
        for (const Location &L : Srcs)
          addEdge(L, Dst);
    }
  };

  auto Escape = [&](const StackCell &Cell) {
    if (Cell.Top) {
      TopEvent = true;
      return;
    }
    for (const StackValue &V : Cell.Origins) {
      if (V.O == StackValue::Origin::New) {
        allocInfo(M.Id, V.DefPc).Escaped = true;
        continue;
      }
      Srcs.clear();
      if (sourcesOf(P, CG, M, V, Srcs))
        for (const Location &L : Srcs)
          markUsed(L); // escapes to untracked territory: assume used
    }
  };

  /// Bucket for array elements given the array operand's cell.
  auto BucketOf = [&](const StackCell &Arr) {
    if (Arr.isSingle()) {
      const StackValue &V = Arr.single();
      if (V.O == StackValue::Origin::Field ||
          V.O == StackValue::Origin::Static)
        return Location::arrayOf(FieldId(static_cast<std::uint32_t>(V.Aux)));
    }
    return Location::globalArray();
  };

  for (std::uint32_t Pc = 0, N = static_cast<std::uint32_t>(M.Code.size());
       Pc != N; ++Pc) {
    if (!SF.isReachable(Pc))
      continue;
    const Instruction &I = M.Code[Pc];
    switch (I.Op) {
    case Opcode::New:
    case Opcode::NewArray:
      allocInfo(M.Id, Pc); // ensure the site exists in the table
      break;

    case Opcode::GetField:
    case Opcode::ArrayLength:
    case Opcode::MonitorEnter:
    case Opcode::MonitorExit:
      Deref(SF.operand(Pc, 0));
      break;

    case Opcode::PutField: {
      Deref(SF.operand(Pc, 1)); // receiver
      FieldId F(static_cast<std::uint32_t>(I.A));
      Flow(SF.operand(Pc, 0), Location::field(F));
      break;
    }
    case Opcode::PutStatic: {
      FieldId F(static_cast<std::uint32_t>(I.A));
      Flow(SF.operand(Pc, 0), Location::staticField(F));
      break;
    }
    case Opcode::AStore:
      Flow(SF.operand(Pc, 0),
           Location::local(M.Id, static_cast<std::uint32_t>(I.A)));
      break;

    case Opcode::AALoad:
      Deref(SF.operand(Pc, 1)); // the array
      break;
    case Opcode::IALoad:
    case Opcode::CALoad:
    case Opcode::DALoad:
      Deref(SF.operand(Pc, 1));
      break;
    case Opcode::AAStore: {
      StackCell Arr = SF.operand(Pc, 2);
      Deref(Arr);
      Flow(SF.operand(Pc, 0), BucketOf(Arr));
      break;
    }
    case Opcode::IAStore:
    case Opcode::CAStore:
    case Opcode::DAStore:
      Deref(SF.operand(Pc, 2));
      break;

    case Opcode::AReturn:
      Flow(SF.operand(Pc, 0), Location::ret(M.Id));
      break;

    case Opcode::Throw:
      Deref(SF.operand(Pc, 0));
      Escape(SF.operand(Pc, 0));
      break;

    case Opcode::InvokeVirtual:
    case Opcode::InvokeSpecial:
    case Opcode::InvokeStatic: {
      MethodId Named(static_cast<std::uint32_t>(I.A));
      const MethodInfo &Callee = P.methodOf(Named);
      std::uint32_t NParams = static_cast<std::uint32_t>(Callee.Params.size());
      std::vector<MethodId> Targets;
      if (I.Op == Opcode::InvokeVirtual)
        expandTargets(P, CG.hierarchy(), Named, Targets);
      else
        Targets.push_back(Named);

      bool AnyNative = false;
      for (MethodId T : Targets)
        if (P.methodOf(T).IsNative)
          AnyNative = true;

      // Explicit parameters (arg j is at stack depth NParams-1-j).
      for (std::uint32_t J = 0; J != NParams; ++J) {
        StackCell Arg = SF.operand(Pc, NParams - 1 - J);
        if (Callee.Params[J] != ValueKind::Ref)
          continue;
        if (AnyNative) {
          Deref(Arg); // natives dereference their handles
          Escape(Arg);
          continue;
        }
        for (MethodId T : Targets) {
          const MethodInfo &TI = P.methodOf(T);
          std::uint32_t Slot = J + (TI.IsStatic ? 0u : 1u);
          Flow(Arg, Location::local(T, Slot));
        }
      }

      // Receiver.
      if (!Callee.IsStatic) {
        StackCell Recv = SF.operand(Pc, NParams);
        if (Callee.IsConstructor) {
          // Construction: records the ctor without counting as a use.
          // The constructor's view of `this` is NOT modelled as a flow
          // edge; dead-code removal therefore additionally requires the
          // ctor to be pure (no leak of `this`), see EffectAnalysis.
          Deref(Recv, /*IsCtorCall=*/true, Named, Pc);
        } else {
          Deref(Recv);
          for (MethodId T : Targets)
            if (!P.methodOf(T).IsNative)
              Flow(Recv, Location::local(T, 0));
        }
      }
      break;
    }

    default:
      break;
    }
  }
}

void ValueFlowAnalysis::solve() {
  if (Solved)
    return;
  Solved = true;
  // Backward propagation: Used(src) <= Used(dst) for each edge src->dst.
  std::unordered_map<Location, std::vector<Location>, LocationHash> Rev;
  for (const auto &[Src, Dsts] : Edges)
    for (const Location &Dst : Dsts)
      Rev[Dst].push_back(Src);

  std::deque<Location> Worklist;
  for (const auto &[L, U] : Used)
    if (U)
      Worklist.push_back(L);
  while (!Worklist.empty()) {
    Location L = Worklist.front();
    Worklist.pop_front();
    auto It = Rev.find(L);
    if (It == Rev.end())
      continue;
    for (const Location &Src : It->second) {
      auto [UIt, Fresh] = Used.try_emplace(Src, true);
      if (Fresh || !UIt->second) {
        UIt->second = true;
        Worklist.push_back(Src);
      }
    }
  }
}

std::vector<Location>
ValueFlowAnalysis::transitiveSinks(MethodId M, std::uint32_t Pc) const {
  std::vector<Location> Out;
  const AllocSiteInfo *A = allocAt(M, Pc);
  if (!A)
    return Out;
  std::deque<Location> Worklist(A->Sinks.begin(), A->Sinks.end());
  std::unordered_map<Location, bool, LocationHash> Seen;
  for (const Location &L : A->Sinks)
    Seen[L] = true;
  while (!Worklist.empty()) {
    Location L = Worklist.front();
    Worklist.pop_front();
    Out.push_back(L);
    auto It = Edges.find(L);
    if (It == Edges.end())
      continue;
    for (const Location &Dst : It->second) {
      auto [SIt, Fresh] = Seen.try_emplace(Dst, true);
      (void)SIt;
      if (Fresh)
        Worklist.push_back(Dst);
    }
  }
  return Out;
}

bool ValueFlowAnalysis::isLocationUsed(const Location &L) const {
  if (TopEvent)
    return true;
  auto It = Used.find(L);
  return It != Used.end() && It->second;
}

bool ValueFlowAnalysis::isAllocationDead(MethodId M, std::uint32_t Pc) const {
  if (TopEvent)
    return false;
  const AllocSiteInfo *A = allocAt(M, Pc);
  if (!A || A->DirectlyUsed || A->Escaped)
    return false;
  for (const Location &L : A->Sinks)
    if (isLocationUsed(L))
      return false;
  return true;
}
