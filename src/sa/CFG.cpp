//===- sa/CFG.cpp ---------------------------------------------------------===//

#include "sa/CFG.h"

#include <algorithm>
#include <set>

using namespace jdrag;
using namespace jdrag::ir;
using namespace jdrag::sa;

void jdrag::sa::normalSuccessors(const MethodInfo &M, std::uint32_t Pc,
                                 std::vector<std::uint32_t> &Out) {
  const Instruction &I = M.Code[Pc];
  if (isBranch(I.Op))
    Out.push_back(static_cast<std::uint32_t>(I.A));
  if (!isUnconditionalTerminator(I.Op))
    Out.push_back(Pc + 1);
}

void jdrag::sa::exceptionalSuccessors(const MethodInfo &M, std::uint32_t Pc,
                                      std::vector<std::uint32_t> &Out) {
  for (const ExceptionHandler &H : M.Handlers)
    if (Pc >= H.Start && Pc < H.End)
      Out.push_back(H.Target);
}

CFG::CFG(const MethodInfo &M) : M(M) {
  std::uint32_t N = static_cast<std::uint32_t>(M.Code.size());
  // Leaders: entry, branch targets, instructions after branches and
  // terminators, handler entries.
  std::set<std::uint32_t> Leaders;
  Leaders.insert(0);
  for (std::uint32_t Pc = 0; Pc != N; ++Pc) {
    const Instruction &I = M.Code[Pc];
    if (isBranch(I.Op)) {
      Leaders.insert(static_cast<std::uint32_t>(I.A));
      if (Pc + 1 < N)
        Leaders.insert(Pc + 1);
    } else if (isUnconditionalTerminator(I.Op) && Pc + 1 < N) {
      Leaders.insert(Pc + 1);
    }
  }
  for (const ExceptionHandler &H : M.Handlers)
    Leaders.insert(H.Target);

  // Carve blocks.
  PcToBlock.assign(N, 0);
  std::vector<std::uint32_t> Starts(Leaders.begin(), Leaders.end());
  for (std::size_t B = 0; B != Starts.size(); ++B) {
    BasicBlock BB;
    BB.Start = Starts[B];
    BB.End = (B + 1 < Starts.size()) ? Starts[B + 1] : N;
    Blocks.push_back(BB);
    for (std::uint32_t Pc = BB.Start; Pc != BB.End; ++Pc)
      PcToBlock[Pc] = static_cast<std::uint32_t>(B);
  }
  for (const ExceptionHandler &H : M.Handlers)
    Blocks[PcToBlock[H.Target]].IsHandlerEntry = true;

  // Edges: normal successors of the last instruction, plus exceptional
  // successors of any instruction in the block.
  std::vector<std::uint32_t> Scratch;
  for (std::uint32_t B = 0, E = static_cast<std::uint32_t>(Blocks.size());
       B != E; ++B) {
    BasicBlock &BB = Blocks[B];
    std::set<std::uint32_t> SuccBlocks;
    if (BB.End > BB.Start) {
      Scratch.clear();
      normalSuccessors(M, BB.End - 1, Scratch);
      for (std::uint32_t Pc : Scratch)
        if (Pc < N)
          SuccBlocks.insert(PcToBlock[Pc]);
      for (std::uint32_t Pc = BB.Start; Pc != BB.End; ++Pc) {
        Scratch.clear();
        exceptionalSuccessors(M, Pc, Scratch);
        for (std::uint32_t Target : Scratch)
          SuccBlocks.insert(PcToBlock[Target]);
      }
    }
    for (std::uint32_t SB : SuccBlocks) {
      BB.Succs.push_back(SB);
      Blocks[SB].Preds.push_back(B);
    }
  }
}
