//===- sa/StackFlow.cpp ---------------------------------------------------===//

#include "sa/StackFlow.h"

#include "sa/CFG.h"
#include "support/ErrorHandling.h"

#include <algorithm>
#include <deque>

using namespace jdrag;
using namespace jdrag::ir;
using namespace jdrag::sa;

bool StackCell::mayBeNewAt(std::uint32_t Pc) const {
  if (Top)
    return true;
  for (const StackValue &V : Origins)
    if (V.O == StackValue::Origin::New && V.DefPc == Pc)
      return true;
  return false;
}

StackCell StackCell::join(const StackCell &A, const StackCell &B) {
  if (A.Top || B.Top)
    return top();
  StackCell Out;
  Out.Origins.reserve(A.Origins.size() + B.Origins.size());
  std::merge(A.Origins.begin(), A.Origins.end(), B.Origins.begin(),
             B.Origins.end(), std::back_inserter(Out.Origins));
  Out.Origins.erase(std::unique(Out.Origins.begin(), Out.Origins.end()),
                    Out.Origins.end());
  if (Out.Origins.size() > MaxOrigins)
    return top();
  return Out;
}

StackFlow::StackFlow(const Program &P, const MethodInfo &M) {
  std::uint32_t N = static_cast<std::uint32_t>(M.Code.size());
  States.assign(N, {});
  Reached.assign(N, false);
  if (M.IsNative || N == 0)
    return;

  std::deque<std::uint32_t> Worklist;
  auto FlowTo = [&](std::uint32_t Pc, const std::vector<StackCell> &S) {
    if (Pc >= N)
      return;
    if (!Reached[Pc]) {
      Reached[Pc] = true;
      States[Pc] = S;
      Worklist.push_back(Pc);
      return;
    }
    std::vector<StackCell> &Existing = States[Pc];
    if (Existing.size() != S.size())
      jdrag_unreachable("stack depth mismatch (verifier bug)");
    bool Changed = false;
    for (std::size_t I = 0, E = Existing.size(); I != E; ++I) {
      StackCell J = StackCell::join(Existing[I], S[I]);
      if (!(J == Existing[I])) {
        Existing[I] = J;
        Changed = true;
      }
    }
    if (Changed)
      Worklist.push_back(Pc);
  };

  Reached[0] = true;
  Worklist.push_back(0);
  // Handler entries start with the caught-exception value.
  for (const ExceptionHandler &H : M.Handlers) {
    StackValue Caught;
    Caught.O = StackValue::Origin::Caught;
    Caught.Aux = -1;
    Caught.DefPc = H.Target;
    FlowTo(H.Target, {StackCell::of(Caught)});
  }

  std::vector<std::uint32_t> Succs;
  while (!Worklist.empty()) {
    std::uint32_t Pc = Worklist.front();
    Worklist.pop_front();
    std::vector<StackCell> S = States[Pc];
    const Instruction &I = M.Code[Pc];

    auto PopN = [&](unsigned K) { S.resize(S.size() - K); };
    auto PushV = [&](StackValue::Origin O, std::int32_t Aux = -1) {
      StackValue V;
      V.O = O;
      V.Aux = Aux;
      V.DefPc = Pc;
      S.push_back(StackCell::of(V));
    };

    switch (I.Op) {
    case Opcode::IConst:
    case Opcode::DConst:
      PushV(StackValue::Origin::Const);
      break;
    case Opcode::AConstNull:
      PushV(StackValue::Origin::Null);
      break;
    case Opcode::Nop:
      break;
    case Opcode::Pop:
      PopN(1);
      break;
    case Opcode::Dup:
      S.push_back(S.back());
      break;
    case Opcode::Swap:
      std::swap(S[S.size() - 1], S[S.size() - 2]);
      break;
    case Opcode::ILoad:
    case Opcode::DLoad:
    case Opcode::ALoad:
      PushV(StackValue::Origin::Local, I.A);
      break;
    case Opcode::IStore:
    case Opcode::DStore:
    case Opcode::AStore:
      PopN(1);
      break;
    case Opcode::IAdd:
    case Opcode::ISub:
    case Opcode::IMul:
    case Opcode::IDiv:
    case Opcode::IRem:
    case Opcode::IAnd:
    case Opcode::IOr:
    case Opcode::IXor:
    case Opcode::IShl:
    case Opcode::IShr:
    case Opcode::DAdd:
    case Opcode::DSub:
    case Opcode::DMul:
    case Opcode::DDiv:
    case Opcode::DCmp:
      PopN(2);
      PushV(StackValue::Origin::Const);
      break;
    case Opcode::INeg:
    case Opcode::DNeg:
    case Opcode::I2D:
    case Opcode::D2I:
      PopN(1);
      PushV(StackValue::Origin::Const);
      break;
    case Opcode::Goto:
      break;
    case Opcode::IfEqZ:
    case Opcode::IfNeZ:
    case Opcode::IfLtZ:
    case Opcode::IfLeZ:
    case Opcode::IfGtZ:
    case Opcode::IfGeZ:
    case Opcode::IfNull:
    case Opcode::IfNonNull:
      PopN(1);
      break;
    case Opcode::IfICmpEq:
    case Opcode::IfICmpNe:
    case Opcode::IfICmpLt:
    case Opcode::IfICmpLe:
    case Opcode::IfICmpGt:
    case Opcode::IfICmpGe:
    case Opcode::IfACmpEq:
    case Opcode::IfACmpNe:
      PopN(2);
      break;
    case Opcode::New:
    case Opcode::NewArray: {
      if (I.Op == Opcode::NewArray)
        PopN(1);
      PushV(StackValue::Origin::New, I.A);
      break;
    }
    case Opcode::GetField:
      PopN(1);
      PushV(StackValue::Origin::Field, I.A);
      break;
    case Opcode::PutField:
      PopN(2);
      break;
    case Opcode::GetStatic:
      PushV(StackValue::Origin::Static, I.A);
      break;
    case Opcode::PutStatic:
      PopN(1);
      break;
    case Opcode::ArrayLength:
      PopN(1);
      PushV(StackValue::Origin::Const);
      break;
    case Opcode::AALoad: {
      PopN(1); // index
      StackCell Arr = S.back();
      S.pop_back();
      // Remember which field the array came from when that is unique.
      std::int32_t FieldAux = -1;
      if (Arr.isSingle() && (Arr.single().O == StackValue::Origin::Field ||
                             Arr.single().O == StackValue::Origin::Static))
        FieldAux = Arr.single().Aux;
      PushV(StackValue::Origin::ArrayElem, FieldAux);
      break;
    }
    case Opcode::IALoad:
    case Opcode::CALoad:
    case Opcode::DALoad:
      PopN(2);
      PushV(StackValue::Origin::Const);
      break;
    case Opcode::AAStore:
    case Opcode::IAStore:
    case Opcode::CAStore:
    case Opcode::DAStore:
      PopN(3);
      break;
    case Opcode::InvokeVirtual:
    case Opcode::InvokeSpecial:
    case Opcode::InvokeStatic: {
      const MethodInfo &Callee = P.Methods[static_cast<std::uint32_t>(I.A)];
      PopN(static_cast<unsigned>(Callee.Params.size()) +
           (Callee.IsStatic ? 0u : 1u));
      if (Callee.Ret != ValueKind::Void)
        PushV(StackValue::Origin::CallResult, I.A);
      break;
    }
    case Opcode::Return:
    case Opcode::IReturn:
    case Opcode::DReturn:
    case Opcode::AReturn:
    case Opcode::Throw:
      break; // no fall-through successors
    case Opcode::MonitorEnter:
    case Opcode::MonitorExit:
      PopN(1);
      break;
    }

    Succs.clear();
    normalSuccessors(M, Pc, Succs);
    for (std::uint32_t Next : Succs)
      FlowTo(Next, S);
    // Exceptional successors are seeded once above (their entry state is
    // always the single Top exception value).
  }
}
