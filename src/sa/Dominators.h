//===- sa/Dominators.h - Dominator tree over a CFG --------------*- C++ -*-===//
//
// Part of jdrag (PLDI 2001 "Heap Profiling for Space-Efficient Java").
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Iterative dominator computation (Cooper-Harvey-Kennedy). The lazy
/// allocation transformation uses dominance for *minimal code insertion*
/// (paper section 5.1): a null-check guard is redundant at a field read
/// dominated by another guarded read of the same field, in the spirit of
/// the PRE-style placement the paper sketches.
///
//===----------------------------------------------------------------------===//

#ifndef JDRAG_SA_DOMINATORS_H
#define JDRAG_SA_DOMINATORS_H

#include "sa/CFG.h"

namespace jdrag::sa {

/// Dominator tree over the blocks of a CFG.
class DominatorTree {
public:
  explicit DominatorTree(const CFG &G);

  /// Immediate dominator block index; the entry block (0) returns itself.
  /// Unreachable blocks return ~0u.
  std::uint32_t idom(std::uint32_t Block) const { return IDom[Block]; }

  /// Does block \p A dominate block \p B?
  bool dominates(std::uint32_t A, std::uint32_t B) const;

  /// Does instruction \p PcA dominate instruction \p PcB? Within one
  /// block, earlier pcs dominate later ones.
  bool dominatesPc(std::uint32_t PcA, std::uint32_t PcB) const;

  bool isReachable(std::uint32_t Block) const {
    return IDom[Block] != Unreached;
  }

private:
  static constexpr std::uint32_t Unreached = ~static_cast<std::uint32_t>(0);
  const CFG &G;
  std::vector<std::uint32_t> IDom;
  std::vector<std::uint32_t> RPOIndex; ///< reverse-postorder number
};

} // namespace jdrag::sa

#endif // JDRAG_SA_DOMINATORS_H
