//===- sa/CallGraph.h - CHA call graph --------------------------*- C++ -*-===//
//
// Part of jdrag (PLDI 2001 "Heap Profiling for Space-Efficient Java").
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Class-Hierarchy-Analysis call graph, the second JAN artifact the
/// paper's workflow depends on (section 5.4): "the call graph shows the
/// methods that are never called (unreachable methods) and can be used to
/// reduce the set of possible targets for a virtual call site". The
/// transformations marked (R) in the paper's Table 5 use this graph to
/// refute uses that appear in the source but cannot happen at run time.
///
//===----------------------------------------------------------------------===//

#ifndef JDRAG_SA_CALLGRAPH_H
#define JDRAG_SA_CALLGRAPH_H

#include "sa/ClassHierarchy.h"

#include <vector>

namespace jdrag::sa {

/// One call site inside a method.
struct CallSite {
  ir::MethodId Caller;
  std::uint32_t Pc = 0;
  ir::MethodId NamedCallee; ///< the statically named method
};

/// CHA call graph with reachability from main (plus finalizers of
/// instantiated classes, which the VM invokes).
class CallGraph {
public:
  explicit CallGraph(const ir::Program &P);

  /// Possible runtime targets of the call at (\p Caller, \p Pc):
  /// singleton for invokestatic/invokespecial, all overriding
  /// implementations in the hierarchy for invokevirtual.
  std::vector<ir::MethodId> targetsOf(ir::MethodId Caller,
                                      std::uint32_t Pc) const;

  /// Methods that may execute (transitively callable from main, native
  /// entry points excluded, finalizers of instantiated classes included).
  const std::vector<ir::MethodId> &reachableMethods() const {
    return Reachable;
  }

  bool isReachable(ir::MethodId M) const {
    return M.Index < ReachableBit.size() && ReachableBit[M.Index];
  }

  /// Call sites inside \p M (empty for natives).
  const std::vector<CallSite> &callSitesIn(ir::MethodId M) const {
    return Sites[M.Index];
  }

  /// All call sites in reachable methods that may dispatch to \p M.
  std::vector<CallSite> callersOf(ir::MethodId M) const;

  const ClassHierarchy &hierarchy() const { return CH; }
  const ir::Program &program() const { return P; }

private:
  std::vector<ir::MethodId> resolveTargets(const CallSite &CS) const;

  const ir::Program &P;
  ClassHierarchy CH;
  std::vector<std::vector<CallSite>> Sites; ///< per method index
  std::vector<ir::MethodId> Reachable;
  std::vector<bool> ReachableBit;
};

} // namespace jdrag::sa

#endif // JDRAG_SA_CALLGRAPH_H
