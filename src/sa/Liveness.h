//===- sa/Liveness.h - Local-variable liveness ------------------*- C++ -*-===//
//
// Part of jdrag (PLDI 2001 "Heap Profiling for Space-Efficient Java").
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Backward liveness of local slots, per instruction. This is the
/// intraprocedural "liveness-analysis" of the paper's section 5.1
/// ("identifying program locations where a reference has no future use")
/// and the engine behind the assign-null transformation for local
/// reference variables -- the Agesen-et-al-style analysis that the paper
/// reports would recover 34% of juru's drag on its own (section 5.3).
///
//===----------------------------------------------------------------------===//

#ifndef JDRAG_SA_LIVENESS_H
#define JDRAG_SA_LIVENESS_H

#include "ir/Program.h"

#include <cstdint>
#include <vector>

namespace jdrag::sa {

/// Per-instruction liveness of local slots (supports up to 64 locals,
/// which verified jdrag methods comfortably fit).
class LivenessAnalysis {
public:
  LivenessAnalysis(const ir::Program &P, const ir::MethodInfo &M);

  /// Is local \p Slot live immediately before instruction \p Pc?
  bool isLiveIn(std::uint32_t Pc, std::uint32_t Slot) const {
    return (LiveIn[Pc] >> Slot) & 1;
  }

  /// Is local \p Slot live immediately after instruction \p Pc (i.e.
  /// along some successor)?
  bool isLiveOut(std::uint32_t Pc, std::uint32_t Slot) const {
    return (LiveOut[Pc] >> Slot) & 1;
  }

  /// Pcs of loads of \p Slot after which the slot is dead -- the slot's
  /// *last uses*. After such a load the reference can be nulled.
  std::vector<std::uint32_t> lastUsePcs(std::uint32_t Slot) const;

  const ir::MethodInfo &method() const { return M; }

private:
  const ir::MethodInfo &M;
  std::vector<std::uint64_t> LiveIn;
  std::vector<std::uint64_t> LiveOut;
};

} // namespace jdrag::sa

#endif // JDRAG_SA_LIVENESS_H
