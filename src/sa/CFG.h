//===- sa/CFG.h - Control-flow graph over bytecode --------------*- C++ -*-===//
//
// Part of jdrag (PLDI 2001 "Heap Profiling for Space-Efficient Java").
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Basic blocks and successor edges (including exceptional edges to
/// handler entries) over a method's bytecode. Used by the dataflow
/// analyses of section 5 and by the dominator computation that guides
/// lazy-allocation guard placement.
///
//===----------------------------------------------------------------------===//

#ifndef JDRAG_SA_CFG_H
#define JDRAG_SA_CFG_H

#include "ir/Program.h"

#include <vector>

namespace jdrag::sa {

/// Appends the normal (non-exceptional) successor pcs of \p Pc to \p Out.
void normalSuccessors(const ir::MethodInfo &M, std::uint32_t Pc,
                      std::vector<std::uint32_t> &Out);

/// Appends handler-entry pcs whose try range covers \p Pc.
void exceptionalSuccessors(const ir::MethodInfo &M, std::uint32_t Pc,
                           std::vector<std::uint32_t> &Out);

/// A basic block: instruction range [Start, End).
struct BasicBlock {
  std::uint32_t Start = 0;
  std::uint32_t End = 0;
  std::vector<std::uint32_t> Succs; ///< block indices
  std::vector<std::uint32_t> Preds; ///< block indices
  bool IsHandlerEntry = false;
};

/// The CFG of one method. Block 0 is the entry block.
class CFG {
public:
  explicit CFG(const ir::MethodInfo &M);

  const std::vector<BasicBlock> &blocks() const { return Blocks; }

  /// Index of the block containing \p Pc.
  std::uint32_t blockOf(std::uint32_t Pc) const { return PcToBlock.at(Pc); }

  const ir::MethodInfo &method() const { return M; }

private:
  const ir::MethodInfo &M;
  std::vector<BasicBlock> Blocks;
  std::vector<std::uint32_t> PcToBlock;
};

} // namespace jdrag::sa

#endif // JDRAG_SA_CFG_H
