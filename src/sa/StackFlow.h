//===- sa/StackFlow.h - Symbolic operand-stack origins ----------*- C++ -*-===//
//
// Part of jdrag (PLDI 2001 "Heap Profiling for Space-Efficient Java").
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An abstract interpretation over the operand stack that tracks, for
/// every stack slot at every pc, *where its value may have come from*: a
/// `new` instruction, a local, a field, a call result, a constant. Each
/// cell holds a small set of possible origins; merge points union the
/// sets (capping at a small bound, beyond which the cell degrades to the
/// conservative Top). The verifier guarantees depth consistency.
///
/// StackFlow underlies the whole-program value-flow analysis (usage /
/// indirect-usage, section 5.1), the constructor purity check (is the
/// putfield receiver `this`?) and the transformation pattern matching
/// (which stores consume the value of a given `new`?).
///
//===----------------------------------------------------------------------===//

#ifndef JDRAG_SA_STACKFLOW_H
#define JDRAG_SA_STACKFLOW_H

#include "ir/Program.h"

#include <span>
#include <vector>

namespace jdrag::sa {

/// One possible origin of a stack value.
struct StackValue {
  enum class Origin : std::uint8_t {
    Const,      ///< iconst/dconst or arithmetic result
    Null,       ///< aconst_null
    New,        ///< result of `new` (Aux = ClassId) / `newarray`
                ///< (Aux = ArrayKind) at pc DefPc
    Local,      ///< loaded from local slot Aux
    Field,      ///< loaded via getfield (field id Aux)
    Static,     ///< loaded via getstatic (field id Aux)
    ArrayElem,  ///< loaded via aaload; Aux = field id the array was read
                ///< from, or -1 for unknown array provenance
    CallResult, ///< returned by a call (Aux = MethodId index of the
                ///< statically named callee)
    Caught,     ///< the exception value at a handler entry
  };

  Origin O = Origin::Const;
  std::int32_t Aux = -1;
  std::uint32_t DefPc = 0; ///< pc of the producing instruction

  friend bool operator==(const StackValue &A, const StackValue &B) {
    return A.O == B.O && A.Aux == B.Aux && A.DefPc == B.DefPc;
  }
  friend bool operator<(const StackValue &A, const StackValue &B) {
    if (A.O != B.O)
      return A.O < B.O;
    if (A.Aux != B.Aux)
      return A.Aux < B.Aux;
    return A.DefPc < B.DefPc;
  }
};

/// A stack cell: a canonical (sorted, deduplicated) set of possible
/// origins, or Top when the set overflowed the tracking bound.
struct StackCell {
  static constexpr std::size_t MaxOrigins = 8;

  std::vector<StackValue> Origins; ///< empty iff Top
  bool Top = false;

  static StackCell top() {
    StackCell C;
    C.Top = true;
    return C;
  }
  static StackCell of(StackValue V) {
    StackCell C;
    C.Origins.push_back(V);
    return C;
  }

  bool isSingle() const { return !Top && Origins.size() == 1; }
  const StackValue &single() const { return Origins.front(); }

  /// True if New(DefPc == Pc) is among the possible origins (or Top).
  bool mayBeNewAt(std::uint32_t Pc) const;

  /// Set union; degrades to Top past MaxOrigins.
  static StackCell join(const StackCell &A, const StackCell &B);

  friend bool operator==(const StackCell &A, const StackCell &B) {
    return A.Top == B.Top && A.Origins == B.Origins;
  }
};

/// Per-method symbolic stack states.
class StackFlow {
public:
  StackFlow(const ir::Program &P, const ir::MethodInfo &M);

  /// The abstract stack just before \p Pc executes (bottom first).
  /// Empty for unreachable pcs.
  std::span<const StackCell> stackBefore(std::uint32_t Pc) const {
    return {States[Pc].data(), States[Pc].size()};
  }

  /// The operand at depth \p FromTop (0 = top) before \p Pc; Top if the
  /// recorded stack is shallower (unreachable code).
  StackCell operand(std::uint32_t Pc, std::uint32_t FromTop) const {
    const auto &S = States[Pc];
    if (FromTop >= S.size())
      return StackCell::top();
    return S[S.size() - 1 - FromTop];
  }

  bool isReachable(std::uint32_t Pc) const { return Reached[Pc]; }

private:
  std::vector<std::vector<StackCell>> States;
  std::vector<bool> Reached;
};

} // namespace jdrag::sa

#endif // JDRAG_SA_STACKFLOW_H
