//===- sa/Reports.h - Static-analysis findings reports ----------*- C++ -*-===//
//
// Part of jdrag (PLDI 2001 "Heap Profiling for Space-Efficient Java").
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders what the section-5 analyses find *without any profile*: the
/// methods the call graph proves unreachable, the allocations usage /
/// indirect-usage analysis proves dead, the constructors the effect
/// analysis certifies removable or state-independent, and the lazy-
/// allocation candidates. This is the "feasible compiler algorithms"
/// view the paper's conclusion aims at -- and the static half of the
/// static-vs-profile ablation.
///
//===----------------------------------------------------------------------===//

#ifndef JDRAG_SA_REPORTS_H
#define JDRAG_SA_REPORTS_H

#include "sa/Effects.h"
#include "sa/ValueFlow.h"

#include <string>
#include <vector>

namespace jdrag::sa {

/// Aggregated static findings over one program.
struct StaticFindings {
  std::vector<ir::MethodId> UnreachableMethods;
  /// Dead allocations (never used, never escaping, all sinks unused).
  std::vector<std::pair<ir::MethodId, std::uint32_t>> DeadAllocations;
  /// Constructors that may be deleted together with their allocation.
  std::vector<ir::MethodId> RemovableCtors;
  /// Constructors that may additionally be *delayed* (lazy allocation).
  std::vector<ir::MethodId> StateIndependentCtors;
  bool ProgramCatchesOOM = false;
};

/// Runs the analyses and collects the findings. Only application
/// (non-library) methods are listed unless \p IncludeLibrary is set.
StaticFindings collectStaticFindings(const ir::Program &P,
                                     const CallGraph &CG,
                                     const ValueFlowAnalysis &VFA,
                                     const EffectAnalysis &EA,
                                     bool IncludeLibrary = false);

/// Renders the findings as text.
std::string renderStaticFindings(const ir::Program &P,
                                 const StaticFindings &F);

} // namespace jdrag::sa

#endif // JDRAG_SA_REPORTS_H
