//===- daemon/Protocol.h - jdragd session wire protocol ---------*- C++ -*-===//
//
// Part of jdrag (PLDI 2001 "Heap Profiling for Space-Efficient Java").
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The wire protocol between an instrumented VM (SocketEventSink) and the
/// out-of-process collector daemon (jdragd), in the mold of heapprofd's
/// client/daemon split. A session is a sequence of length-prefixed
/// messages over one stream socket (Unix or TCP):
///
///   HELLO  pid, client name, stream WireFormat, protocol version --
///          sent once, first; the daemon opens the session recording.
///   CHUNK  exactly one framed chunk of the existing `.jdev` chunk
///          format, verbatim (16-byte ChunkHeader + payload, or a v4
///          chunk index footer block). The session protocol adds only
///          the outer message frame; the payload bytes are what
///          FileEventSink would have written, so the daemon can append
///          them to a recording unmodified.
///   BYE    the client's own delivery accounting (chunks/bytes sent and
///          dropped) -- lets the daemon cross-check what it received.
///
/// Message framing is the loss boundary: the daemon appends a chunk to
/// the session recording only once the whole message has arrived, so a
/// connection that dies mid-message leaves the recording at a clean
/// chunk boundary (a valid prefix), never truncated mid-frame. The
/// interrupted chunk is the *client's* to retransmit or spool.
///
/// This header is intentionally self-contained (header-only, POSIX
/// sockets) so the client sink in src/profiler/ and the daemon in
/// src/daemon/ share one definition without a link-time dependency.
///
//===----------------------------------------------------------------------===//

#ifndef JDRAG_DAEMON_PROTOCOL_H
#define JDRAG_DAEMON_PROTOCOL_H

#include "profiler/EventStream.h"

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace jdrag::daemon {

/// "jdSM", little-endian: leads every session message header.
inline constexpr std::uint32_t SessionMagic = 0x4d53646aU;

/// Bumped on incompatible protocol changes; HELLO carries the client's
/// version and the daemon refuses mismatches instead of mis-decoding.
inline constexpr std::uint32_t ProtocolVersion = 1;

enum class MsgType : std::uint32_t {
  Hello = 1,
  Chunk = 2,
  Bye = 3,
};

/// 16-byte message frame (native-endian, like the chunk framing: a
/// recording daemon runs on the machine -- or at least the architecture
/// -- of its clients).
struct MsgHeader {
  std::uint32_t Magic = SessionMagic;
  std::uint32_t Type = 0;
  std::uint32_t Length = 0; ///< payload bytes following this header
  std::uint32_t Reserved = 0;
};
static_assert(sizeof(MsgHeader) == 16, "wire format is fixed-width");

/// Upper bound on a session message payload: one maximal chunk frame
/// (header + MaxChunkPayload) with slack for the footer block's 8 tail
/// bytes. A reader rejects larger Length fields as corruption.
inline constexpr std::uint32_t MaxMessagePayload =
    profiler::MaxChunkPayload + 64;

/// Client name length bound (HELLO).
inline constexpr std::uint32_t MaxClientName = 256;

struct HelloInfo {
  std::uint64_t Pid = 0;
  profiler::WireFormat Format = profiler::DefaultWireFormat;
  std::uint32_t Protocol = ProtocolVersion;
  std::string Name;
  /// Sampling params behind the session's stream (0 = exact). Carried
  /// as a 16-byte HELLO extension after the name; pre-sampling clients
  /// omit it and decode as exact.
  std::uint64_t SampleBytes = 0;
  std::uint64_t SampleSeed = profiler::SamplingParams{}.SampleSeed;
};

/// Client-side delivery accounting carried by BYE.
struct ByeInfo {
  std::uint64_t ChunksSent = 0;
  std::uint64_t BytesSent = 0;
  std::uint64_t ChunksDropped = 0;
  std::uint64_t BytesDropped = 0;
};

inline void appendBytes(std::vector<std::byte> &Out, const void *Data,
                        std::size_t Size) {
  const std::byte *P = static_cast<const std::byte *>(Data);
  Out.insert(Out.end(), P, P + Size);
}

inline void appendMsgHeader(std::vector<std::byte> &Out, MsgType T,
                            std::uint32_t Length) {
  MsgHeader H;
  H.Type = static_cast<std::uint32_t>(T);
  H.Length = Length;
  appendBytes(Out, &H, sizeof(H));
}

/// HELLO payload: u32 protocol version, u32 wire format, u64 pid,
/// u32 name length, name bytes, then a 16-byte sampling extension
/// (u64 sample interval, u64 sample seed). Decoders accept both the
/// extended and the legacy (extension-less) layout, so old and new
/// clients and daemons interoperate; an absent extension means exact.
inline std::vector<std::byte> encodeHello(const HelloInfo &Info) {
  std::vector<std::byte> Out;
  std::uint32_t NameLen =
      static_cast<std::uint32_t>(std::min<std::size_t>(Info.Name.size(),
                                                       MaxClientName));
  Out.reserve(sizeof(MsgHeader) + 36 + NameLen);
  appendMsgHeader(Out, MsgType::Hello, 36 + NameLen);
  std::uint32_t Proto = Info.Protocol;
  std::uint32_t Fmt = static_cast<std::uint32_t>(Info.Format);
  appendBytes(Out, &Proto, 4);
  appendBytes(Out, &Fmt, 4);
  appendBytes(Out, &Info.Pid, 8);
  appendBytes(Out, &NameLen, 4);
  appendBytes(Out, Info.Name.data(), NameLen);
  appendBytes(Out, &Info.SampleBytes, 8);
  appendBytes(Out, &Info.SampleSeed, 8);
  return Out;
}

inline bool decodeHello(std::span<const std::byte> Payload, HelloInfo &Out,
                        std::string *Err) {
  if (Payload.size() < 20) {
    if (Err)
      *Err = "short HELLO payload";
    return false;
  }
  std::uint32_t Fmt = 0, NameLen = 0;
  std::memcpy(&Out.Protocol, Payload.data(), 4);
  std::memcpy(&Fmt, Payload.data() + 4, 4);
  std::memcpy(&Out.Pid, Payload.data() + 8, 8);
  std::memcpy(&NameLen, Payload.data() + 16, 4);
  // Legacy layout (no sampling extension) or extended (+16 bytes).
  if (NameLen > MaxClientName ||
      (Payload.size() != 20 + NameLen && Payload.size() != 36 + NameLen)) {
    if (Err)
      *Err = "malformed HELLO name length";
    return false;
  }
  if (Fmt < 2 || Fmt > 6) {
    if (Err)
      *Err = "HELLO carries unknown wire format " + std::to_string(Fmt);
    return false;
  }
  Out.Format = static_cast<profiler::WireFormat>(Fmt);
  Out.Name.assign(reinterpret_cast<const char *>(Payload.data()) + 20,
                  NameLen);
  Out.SampleBytes = 0;
  Out.SampleSeed = profiler::SamplingParams{}.SampleSeed;
  if (Payload.size() == 36 + NameLen) {
    std::memcpy(&Out.SampleBytes, Payload.data() + 20 + NameLen, 8);
    std::memcpy(&Out.SampleSeed, Payload.data() + 28 + NameLen, 8);
  }
  return true;
}

/// BYE payload: four u64 counters.
inline std::vector<std::byte> encodeBye(const ByeInfo &Info) {
  std::vector<std::byte> Out;
  Out.reserve(sizeof(MsgHeader) + 32);
  appendMsgHeader(Out, MsgType::Bye, 32);
  appendBytes(Out, &Info.ChunksSent, 8);
  appendBytes(Out, &Info.BytesSent, 8);
  appendBytes(Out, &Info.ChunksDropped, 8);
  appendBytes(Out, &Info.BytesDropped, 8);
  return Out;
}

inline bool decodeBye(std::span<const std::byte> Payload, ByeInfo &Out,
                      std::string *Err) {
  if (Payload.size() != 32) {
    if (Err)
      *Err = "malformed BYE payload";
    return false;
  }
  std::memcpy(&Out.ChunksSent, Payload.data(), 8);
  std::memcpy(&Out.BytesSent, Payload.data() + 8, 8);
  std::memcpy(&Out.ChunksDropped, Payload.data() + 16, 8);
  std::memcpy(&Out.BytesDropped, Payload.data() + 24, 8);
  return true;
}

/// Incremental message framer: append() raw socket bytes in any slicing
/// (a dribbling client, a 64 KB read) and next() yields complete
/// messages. The payload span stays valid until the next append().
class MessageReader {
public:
  enum class Status {
    Message,  ///< H/Payload hold the next complete message
    NeedMore, ///< no complete message buffered yet
    Error,    ///< stream violates the protocol (sticky); see error()
  };

  void append(const std::byte *Data, std::size_t Size) {
    // Compact before growing: drop consumed bytes so a long session
    // does not accrete its whole history in the buffer.
    if (Off) {
      Buf.erase(Buf.begin(), Buf.begin() + static_cast<std::ptrdiff_t>(Off));
      Off = 0;
    }
    Buf.insert(Buf.end(), Data, Data + Size);
  }

  Status next(MsgHeader &H, std::span<const std::byte> &Payload) {
    if (Failed)
      return Status::Error;
    if (Buf.size() - Off < sizeof(MsgHeader))
      return Status::NeedMore;
    std::memcpy(&H, Buf.data() + Off, sizeof(MsgHeader));
    if (H.Magic != SessionMagic)
      return fail("bad session message magic");
    if (H.Type < 1 || H.Type > 3)
      return fail("unknown session message type " + std::to_string(H.Type));
    if (H.Length > MaxMessagePayload)
      return fail("oversized session message");
    if (Buf.size() - Off < sizeof(MsgHeader) + H.Length)
      return Status::NeedMore;
    Payload = std::span<const std::byte>(Buf.data() + Off + sizeof(MsgHeader),
                                         H.Length);
    Off += sizeof(MsgHeader) + H.Length;
    return Status::Message;
  }

  /// Bytes buffered beyond the last complete message (a partial message
  /// in flight when the connection closed).
  std::size_t pendingBytes() const { return Buf.size() - Off; }
  const std::string &error() const { return Err; }

private:
  Status fail(std::string Msg) {
    Failed = true;
    if (Err.empty())
      Err = std::move(Msg);
    return Status::Error;
  }

  std::vector<std::byte> Buf;
  std::size_t Off = 0;
  std::string Err;
  bool Failed = false;
};

//===----------------------------------------------------------------------===//
// Addresses and POSIX socket helpers
//===----------------------------------------------------------------------===//

/// A parsed endpoint spec: `unix:/path/to.sock` or `tcp:HOST:PORT`.
struct Address {
  enum class Kind { Unix, Tcp };
  Kind K = Kind::Unix;
  std::string Path;           ///< Unix
  std::string Host;           ///< Tcp
  std::uint16_t Port = 0;     ///< Tcp

  std::string str() const {
    if (K == Kind::Unix)
      return "unix:" + Path;
    return "tcp:" + Host + ":" + std::to_string(Port);
  }
};

inline bool parseAddress(const std::string &Spec, Address &Out,
                         std::string *Err) {
  if (Spec.rfind("unix:", 0) == 0) {
    Out.K = Address::Kind::Unix;
    Out.Path = Spec.substr(5);
    if (Out.Path.empty() || Out.Path.size() >= sizeof(sockaddr_un{}.sun_path)) {
      if (Err)
        *Err = "bad unix socket path in '" + Spec + "'";
      return false;
    }
    return true;
  }
  if (Spec.rfind("tcp:", 0) == 0) {
    std::string Rest = Spec.substr(4);
    std::size_t Colon = Rest.rfind(':');
    if (Colon == std::string::npos || Colon == 0 ||
        Colon + 1 == Rest.size()) {
      if (Err)
        *Err = "expected tcp:HOST:PORT in '" + Spec + "'";
      return false;
    }
    Out.K = Address::Kind::Tcp;
    Out.Host = Rest.substr(0, Colon);
    unsigned long Port = 0;
    try {
      Port = std::stoul(Rest.substr(Colon + 1));
    } catch (...) {
      Port = 0;
    }
    if (Port == 0 || Port > 65535) {
      if (Err)
        *Err = "bad port in '" + Spec + "'";
      return false;
    }
    Out.Port = static_cast<std::uint16_t>(Port);
    return true;
  }
  if (Err)
    *Err = "address must start with unix: or tcp: ('" + Spec + "')";
  return false;
}

inline bool fillSockaddr(const Address &A, sockaddr_storage &SS,
                         socklen_t &Len, std::string *Err) {
  std::memset(&SS, 0, sizeof(SS));
  if (A.K == Address::Kind::Unix) {
    auto *SU = reinterpret_cast<sockaddr_un *>(&SS);
    SU->sun_family = AF_UNIX;
    std::strncpy(SU->sun_path, A.Path.c_str(), sizeof(SU->sun_path) - 1);
    Len = sizeof(sockaddr_un);
    return true;
  }
  auto *SI = reinterpret_cast<sockaddr_in *>(&SS);
  SI->sin_family = AF_INET;
  SI->sin_port = htons(A.Port);
  // Numeric IPv4 only (plus the "localhost" shorthand): the daemon is a
  // same-machine or same-rack collector, not a name-resolving client.
  std::string Host = A.Host == "localhost" ? "127.0.0.1" : A.Host;
  if (inet_pton(AF_INET, Host.c_str(), &SI->sin_addr) != 1) {
    if (Err)
      *Err = "cannot parse IPv4 host '" + A.Host + "'";
    return false;
  }
  Len = sizeof(sockaddr_in);
  return true;
}

/// Creates, binds and listens on \p A. Returns the fd, or -1 with
/// \p Err. Unix paths are unlinked first (a stale socket from a crashed
/// daemon must not block restart).
inline int listenOn(const Address &A, int Backlog, std::string *Err) {
  sockaddr_storage SS;
  socklen_t Len = 0;
  if (!fillSockaddr(A, SS, Len, Err))
    return -1;
  int Fd = ::socket(A.K == Address::Kind::Unix ? AF_UNIX : AF_INET,
                    SOCK_STREAM, 0);
  if (Fd < 0) {
    if (Err)
      *Err = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  if (A.K == Address::Kind::Unix) {
    ::unlink(A.Path.c_str());
  } else {
    int One = 1;
    ::setsockopt(Fd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
  }
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&SS), Len) != 0 ||
      ::listen(Fd, Backlog) != 0) {
    if (Err)
      *Err = "bind/listen " + A.str() + ": " + std::strerror(errno);
    ::close(Fd);
    return -1;
  }
  return Fd;
}

inline bool setNonBlocking(int Fd, bool On) {
  int Flags = ::fcntl(Fd, F_GETFL, 0);
  if (Flags < 0)
    return false;
  Flags = On ? (Flags | O_NONBLOCK) : (Flags & ~O_NONBLOCK);
  return ::fcntl(Fd, F_SETFL, Flags) == 0;
}

/// Connects to \p A with a bounded wait: non-blocking connect + poll,
/// then the socket is returned in *blocking* mode. Returns the fd, or
/// -1 with the failing errno in \p ErrnoOut.
inline int connectTo(const Address &A, int TimeoutMs, int *ErrnoOut) {
  sockaddr_storage SS;
  socklen_t Len = 0;
  std::string Dummy;
  if (!fillSockaddr(A, SS, Len, &Dummy)) {
    if (ErrnoOut)
      *ErrnoOut = EINVAL;
    return -1;
  }
  int Fd = ::socket(A.K == Address::Kind::Unix ? AF_UNIX : AF_INET,
                    SOCK_STREAM, 0);
  if (Fd < 0) {
    if (ErrnoOut)
      *ErrnoOut = errno;
    return -1;
  }
  setNonBlocking(Fd, true);
  int Rc = ::connect(Fd, reinterpret_cast<sockaddr *>(&SS), Len);
  if (Rc != 0 && errno == EINPROGRESS) {
    pollfd P{Fd, POLLOUT, 0};
    Rc = ::poll(&P, 1, TimeoutMs);
    if (Rc == 1) {
      int SoErr = 0;
      socklen_t SoLen = sizeof(SoErr);
      ::getsockopt(Fd, SOL_SOCKET, SO_ERROR, &SoErr, &SoLen);
      errno = SoErr;
      Rc = SoErr == 0 ? 0 : -1;
    } else {
      errno = Rc == 0 ? ETIMEDOUT : errno;
      Rc = -1;
    }
  }
  if (Rc != 0) {
    if (ErrnoOut)
      *ErrnoOut = errno;
    ::close(Fd);
    return -1;
  }
  setNonBlocking(Fd, false);
  if (A.K == Address::Kind::Tcp) {
    int One = 1;
    ::setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
  }
  return Fd;
}

} // namespace jdrag::daemon

#endif // JDRAG_DAEMON_PROTOCOL_H
