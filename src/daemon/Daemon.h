//===- daemon/Daemon.h - The jdragd collector daemon ------------*- C++ -*-===//
//
// Part of jdrag (PLDI 2001 "Heap Profiling for Space-Efficient Java").
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The out-of-process collector: one single-threaded poll() event loop
/// (the redis shape -- no locks, no thread pools; on a 1-CPU box the
/// loop IS the machine) accepting instrumented-VM sessions on a Unix or
/// TCP socket and admin queries on a second socket speaking a
/// redis-style line protocol.
///
/// Per session the daemon does three things with every chunk message:
///
///   1. append the chunk verbatim to a per-session `.jdev` recording
///      (so the raw stream survives even if live decode fails);
///   2. feed it incrementally through a FrameDecoder into a
///      DragProfiler (when the HELLO benchmark name resolves to a
///      Program);
///   3. at session end, fold the profile into the fleet-wide aggregated
///      drag table served by `TOP <n>`.
///
/// Failure-mode contract (docs/daemon.md has the full table): the
/// daemon never trusts a client -- protocol violations close that one
/// session and are counted; a half-received chunk message is discarded,
/// leaving the session recording a *valid prefix* at a chunk boundary;
/// a recording-disk failure degrades that session to aggregate-only
/// (the loss is observable in HEALTH). The daemon's own crash is the
/// client's problem by design: SocketEventSink reconnects or spools.
///
/// Admin protocol: one command per line; every response ends with a
/// line containing only "END".
///
///   PING            liveness probe -> PONG
///   INFO            daemon identity + counters
///   CLIENTS         one line per session (live and finished)
///   TOP <n>         heaviest fleet-aggregate rows
///   HEALTH          delivery/decode accounting incl. client BYE claims
///   SHUTDOWN        graceful stop (finalize sessions, flush recordings)
///
//===----------------------------------------------------------------------===//

#ifndef JDRAG_DAEMON_DAEMON_H
#define JDRAG_DAEMON_DAEMON_H

#include "daemon/Aggregate.h"
#include "daemon/Protocol.h"
#include "profiler/DragProfiler.h"

#include <csignal>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace jdrag::daemon {

/// Maps a HELLO benchmark name to its Program (nullptr = unknown: the
/// session is still recorded, just not live-profiled). Injected so the
/// daemon library does not depend on the benchmark corpus; jdragd wires
/// benchmarks::buildAll() through this.
using ProgramResolver =
    std::function<const ir::Program *(const std::string &)>;

struct DaemonOptions {
  /// Session endpoint spec (`unix:PATH` or `tcp:HOST:PORT`). Required.
  std::string SessionAddr;
  /// Admin endpoint spec. Empty = no admin port.
  std::string AdminAddr;
  /// Directory receiving per-session recordings (session-NNN-name.jdev).
  std::string OutputDir = ".";
  /// fsync cadence of session recordings (FileEventSink::Options).
  std::uint32_t FsyncEveryChunks = 0;
  /// Concurrent session cap; excess connects are refused.
  int MaxClients = 64;
  ProgramResolver Resolve;
  /// Log accepts/finalizations to stderr.
  bool Verbose = false;
};

struct DaemonStats {
  std::uint64_t SessionsTotal = 0;
  std::uint64_t SessionsActive = 0;
  std::uint64_t SessionsClean = 0;   ///< ended with BYE
  std::uint64_t SessionsUnclean = 0; ///< EOF or error without BYE
  std::uint64_t SessionsRefused = 0; ///< over MaxClients
  std::uint64_t ChunksReceived = 0;  ///< data chunks (footers excluded)
  std::uint64_t FootersReceived = 0;
  std::uint64_t BytesReceived = 0; ///< framed chunk bytes, all messages
  std::uint64_t DecodeErrors = 0;  ///< sessions whose live decode failed
  std::uint64_t ProtocolErrors = 0;
  std::uint64_t RecordingErrors = 0; ///< session-file write failures
  std::uint64_t ClientReportedDrops = 0; ///< sum of BYE drop claims
  std::uint64_t ByeMismatches = 0; ///< BYE chunk count != received count
  /// v6 compression accounting over received data chunks: bytes on the
  /// wire vs their declared uncompressed size (equal for raw chunks).
  std::uint64_t WirePayloadBytes = 0;
  std::uint64_t RawPayloadBytes = 0;
};

class CollectorDaemon {
public:
  explicit CollectorDaemon(DaemonOptions Opt);
  ~CollectorDaemon();
  CollectorDaemon(const CollectorDaemon &) = delete;
  CollectorDaemon &operator=(const CollectorDaemon &) = delete;

  /// Binds the listeners. False (with \p Err) on bad specs or bind
  /// failure.
  bool start(std::string *Err);

  /// The event loop; returns 0 after a graceful shutdown (SHUTDOWN
  /// command or requestShutdown()), 1 on a loop-level failure. All
  /// active sessions are finalized -- recordings flushed, profiles
  /// folded -- before returning.
  int run();

  /// Async-signal-safe stop request (callable from a signal handler).
  void requestShutdown() { Stop = 1; }

  /// Routes SIGTERM/SIGINT of this process to requestShutdown() and
  /// ignores SIGPIPE (a dying admin client must not kill the daemon).
  /// One daemon per process.
  void installSignalHandlers();

  /// Evaluates one admin command line and returns the response body
  /// (without the END terminator). The socket admin protocol calls
  /// exactly this, so tests can drive commands in-process.
  std::string execAdmin(const std::string &Line);

  const DaemonStats &stats() const { return Stats; }
  const FleetAggregate &aggregate() const { return Fleet; }

private:
  struct Session;
  struct AdminConn;

  void acceptSessions();
  void acceptAdmins();
  void readSession(Session &S);
  void handleMessage(Session &S, const MsgHeader &H,
                     std::span<const std::byte> Payload);
  void protocolError(Session &S, const std::string &Why);
  void finalizeSession(Session &S, bool Clean);
  void readAdmin(AdminConn &A);
  void flushAdmin(AdminConn &A);
  std::string clientsReport() const;
  std::string sessionLine(const Session &S) const;

  DaemonOptions Opt;
  Address SessAddr, AdmAddr;
  int SessionLfd = -1;
  int AdminLfd = -1;
  std::vector<std::unique_ptr<Session>> Sessions;
  std::vector<std::unique_ptr<AdminConn>> Admins;
  std::vector<std::string> FinishedClients; ///< CLIENTS lines, finalized
  FleetAggregate Fleet;
  DaemonStats Stats;
  std::uint64_t NextSessionId = 0;
  volatile std::sig_atomic_t Stop = 0;
};

/// One-shot admin client: connects to \p Addr, sends \p Cmd, reads the
/// response up to the END terminator into \p Response (terminator
/// stripped). Used by `jdragd query`, the smoke script, and tests.
bool adminQuery(const std::string &Addr, const std::string &Cmd,
                std::string *Response, std::string *Err,
                int TimeoutMs = 5000);

} // namespace jdrag::daemon

#endif // JDRAG_DAEMON_DAEMON_H
