//===- daemon/Aggregate.cpp -----------------------------------------------===//

#include "daemon/Aggregate.h"

#include "analysis/DragReport.h"
#include "support/Format.h"

#include <algorithm>
#include <vector>

using namespace jdrag;
using namespace jdrag::daemon;

void FleetAggregate::fold(const std::string &Bench, const ir::Program &P,
                          const profiler::ProfileLog &Log) {
  analysis::DragReport Report(P, Log);
  fold(Bench, Report);
}

void FleetAggregate::fold(const std::string &Bench,
                          const analysis::DragReport &Report) {
  const ir::Program &P = Report.program();
  const profiler::ProfileLog &Log = Report.log();
  const profiler::SiteTable &Sites = Log.Sites;
  bool Sampled = Log.SampleRate != 0;
  for (const analysis::SiteGroup &G : Report.groups()) {
    std::string Site = G.Site == profiler::InvalidSite
                           ? std::string("<unknown site>")
                           : Sites.describe(P, G.Site);
    FleetRow &Row = Rows[Bench + "  " + Site];
    // TotalDrag from a sampled log is already the scaled HT estimate
    // (analysis/DragReport.cpp), so exact and sampled sessions fold
    // into commensurable units; SampledSessions flags the mixture.
    Row.Drag += G.TotalDrag;
    Row.Objects += G.ObjectCount;
    Row.Bytes += G.TotalBytes;
    ++Row.Sessions;
    Row.SampledSessions += Sampled;
    Total += G.TotalDrag;
  }
  ++Folded;
  SampledFolded += Sampled;
}

std::string FleetAggregate::renderTop(std::size_t N) const {
  std::vector<std::pair<const std::string *, const FleetRow *>> Sorted;
  Sorted.reserve(Rows.size());
  for (const auto &KV : Rows)
    Sorted.emplace_back(&KV.first, &KV.second);
  // Stable sort over the ordered map keeps equal-drag rows in key order.
  std::stable_sort(Sorted.begin(), Sorted.end(),
                   [](const auto &A, const auto &B) {
                     return A.second->Drag > B.second->Drag;
                   });
  if (N < Sorted.size())
    Sorted.resize(N);
  std::string Out;
  std::size_t Rank = 0;
  for (const auto &[Key, Row] : Sorted)
    Out += formatString("%3zu %12.4f MB^2 %10llu objs %12llu bytes  %s%s\n",
                        ++Rank, toMB2(Row->Drag),
                        static_cast<unsigned long long>(Row->Objects),
                        static_cast<unsigned long long>(Row->Bytes),
                        Key->c_str(),
                        Row->SampledSessions ? "  [sampled estimate]" : "");
  return Out;
}
