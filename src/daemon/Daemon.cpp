//===- daemon/Daemon.cpp - The jdragd collector daemon --------------------===//

#include "daemon/Daemon.h"

#include "profiler/Sampling.h"
#include "support/Format.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace jdrag;
using namespace jdrag::daemon;

namespace {

/// Session file names embed the client-supplied name; everything outside
/// [A-Za-z0-9_.-] is replaced so a hostile HELLO cannot traverse paths.
std::string sanitizeName(const std::string &Name) {
  std::string Out = Name.empty() ? std::string("anon") : Name;
  for (char &C : Out) {
    bool Ok = (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') ||
              (C >= '0' && C <= '9') || C == '_' || C == '.' || C == '-';
    if (!Ok)
      C = '_';
  }
  return Out;
}

/// Admin connections are line-oriented and low-volume; a peer that
/// streams bytes without a newline, or never reads its responses, is
/// hostile or broken and gets disconnected rather than growing daemon
/// memory without bound.
constexpr std::size_t MaxAdminLine = 4096;
constexpr std::size_t MaxAdminPendingOut = 4u << 20;

/// Declared uncompressed size of a v6 compressed chunk payload: the LZ
/// block's leading uvarint (a producer claim -- accounting only; the
/// decoder re-validates it against the real output). Returns 0 on a
/// malformed prefix.
std::uint64_t lzDeclaredRawLen(const std::byte *P, std::size_t N) {
  std::uint64_t V = 0;
  for (std::size_t I = 0; I != N && I != 10; ++I) {
    std::uint8_t B = static_cast<std::uint8_t>(P[I]);
    V |= static_cast<std::uint64_t>(B & 0x7F) << (7 * I);
    if (!(B & 0x80))
      return V;
  }
  return 0;
}

} // namespace

struct CollectorDaemon::Session {
  int Fd = -1;
  std::uint64_t Id = 0;
  MessageReader Rd;
  bool GotHello = false;
  HelloInfo Info;
  const ir::Program *Prog = nullptr;
  profiler::FileEventSink Rec;
  std::string FilePath;
  bool RecOpen = false;
  bool RecFailed = false;
  std::unique_ptr<profiler::DragProfiler> Prof;
  std::unique_ptr<profiler::FrameDecoder> Dec;
  bool DecodeFailed = false;
  std::uint64_t DataChunks = 0;
  std::uint64_t Footers = 0;
  std::uint64_t Bytes = 0;
  /// Object-byte totals of the session's decoded profile, stamped at
  /// finalize: raw (as logged) and inverse-probability scaled (equal
  /// for exact sessions). CLIENTS shows both so mixed exact/sampled
  /// fleets are not silently summed as if comparable.
  std::uint64_t RawObjBytes = 0;
  std::uint64_t EstObjBytes = 0;
  /// v6 compression accounting over this session's data chunks:
  /// payload bytes on the wire vs their declared uncompressed size.
  std::uint64_t WirePayloadBytes = 0;
  std::uint64_t RawPayloadBytes = 0;
  bool GotBye = false;
  ByeInfo Bye;
  bool Closed = false;    ///< fd is dead; reap on the next sweep
  bool Finalized = false; ///< recording flushed, profile folded
  const char *State = "hello-wait";
};

struct CollectorDaemon::AdminConn {
  int Fd = -1;
  std::string In;  ///< partial command line
  std::string Out; ///< unflushed response bytes
  bool Closed = false;
};

CollectorDaemon::CollectorDaemon(DaemonOptions O) : Opt(std::move(O)) {}

CollectorDaemon::~CollectorDaemon() {
  for (auto &S : Sessions)
    if (S->Fd >= 0)
      ::close(S->Fd);
  for (auto &A : Admins)
    if (A->Fd >= 0)
      ::close(A->Fd);
  if (SessionLfd >= 0)
    ::close(SessionLfd);
  if (AdminLfd >= 0)
    ::close(AdminLfd);
  if (SessAddr.K == Address::Kind::Unix && SessionLfd >= 0)
    ::unlink(SessAddr.Path.c_str());
  if (AdmAddr.K == Address::Kind::Unix && AdminLfd >= 0)
    ::unlink(AdmAddr.Path.c_str());
}

bool CollectorDaemon::start(std::string *Err) {
  if (!parseAddress(Opt.SessionAddr, SessAddr, Err))
    return false;
  SessionLfd = listenOn(SessAddr, 64, Err);
  if (SessionLfd < 0)
    return false;
  setNonBlocking(SessionLfd, true);
  if (!Opt.AdminAddr.empty()) {
    if (!parseAddress(Opt.AdminAddr, AdmAddr, Err) ||
        (AdminLfd = listenOn(AdmAddr, 16, Err)) < 0) {
      ::close(SessionLfd);
      SessionLfd = -1;
      return false;
    }
    setNonBlocking(AdminLfd, true);
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Signals
//===----------------------------------------------------------------------===//

namespace {
CollectorDaemon *SignalTarget = nullptr;
void onStopSignal(int) {
  if (SignalTarget)
    SignalTarget->requestShutdown();
}
} // namespace

void CollectorDaemon::installSignalHandlers() {
  SignalTarget = this;
  struct sigaction SA;
  std::memset(&SA, 0, sizeof(SA));
  SA.sa_handler = onStopSignal;
  ::sigaction(SIGTERM, &SA, nullptr);
  ::sigaction(SIGINT, &SA, nullptr);
  // A client or admin connection dying mid-write must surface as EPIPE
  // from send(), not kill the daemon.
  ::signal(SIGPIPE, SIG_IGN);
}

//===----------------------------------------------------------------------===//
// Event loop
//===----------------------------------------------------------------------===//

int CollectorDaemon::run() {
  if (SessionLfd < 0)
    return 1;
  while (!Stop) {
    std::vector<pollfd> Pfds;
    Pfds.push_back({SessionLfd, POLLIN, 0});
    std::size_t AdminLIdx = static_cast<std::size_t>(-1);
    if (AdminLfd >= 0) {
      AdminLIdx = Pfds.size();
      Pfds.push_back({AdminLfd, POLLIN, 0});
    }
    std::size_t SessBase = Pfds.size();
    for (auto &S : Sessions)
      Pfds.push_back({S->Fd, POLLIN, 0});
    std::size_t AdminBase = Pfds.size();
    for (auto &A : Admins) {
      short Ev = POLLIN;
      if (!A->Out.empty())
        Ev |= POLLOUT;
      Pfds.push_back({A->Fd, Ev, 0});
    }
    // Snapshot counts: acceptSessions()/acceptAdmins() below grow the
    // containers, but only these first NumSess/NumAdmins entries have a
    // pollfd; a freshly accepted connection waits for the next
    // iteration.
    std::size_t NumSess = AdminBase - SessBase;
    std::size_t NumAdmins = Pfds.size() - AdminBase;

    // Short timeout so a requestShutdown() from a signal handler is
    // noticed promptly even on an idle daemon.
    int N = ::poll(Pfds.data(), Pfds.size(), 200);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      std::fprintf(stderr, "jdragd: poll: %s\n", std::strerror(errno));
      break;
    }
    if (Pfds[0].revents & POLLIN)
      acceptSessions();
    if (AdminLIdx != static_cast<std::size_t>(-1) &&
        (Pfds[AdminLIdx].revents & POLLIN))
      acceptAdmins();
    for (std::size_t I = 0; I < NumSess; ++I)
      if (Pfds[SessBase + I].revents & (POLLIN | POLLHUP | POLLERR))
        readSession(*Sessions[I]);
    for (std::size_t I = 0; I < NumAdmins; ++I) {
      short Re = Pfds[AdminBase + I].revents;
      if (Re & (POLLIN | POLLHUP | POLLERR))
        readAdmin(*Admins[I]);
      if (!Admins[I]->Closed && (Re & POLLOUT))
        flushAdmin(*Admins[I]);
    }

    // Reap closed connections outside the dispatch loop (indices above
    // are positional against the pollfd snapshot).
    std::erase_if(Sessions, [](const std::unique_ptr<Session> &S) {
      return S->Closed;
    });
    std::erase_if(Admins, [](const std::unique_ptr<AdminConn> &A) {
      if (A->Closed && A->Fd >= 0)
        ::close(A->Fd);
      return A->Closed;
    });
  }

  // Graceful shutdown: every still-open session gets its recording
  // flushed and its profile folded. No BYE arrived, so they count as
  // unclean -- the recording is still a valid chunk-aligned prefix.
  for (auto &S : Sessions) {
    finalizeSession(*S, /*Clean=*/S->GotBye);
    if (S->Fd >= 0) {
      ::close(S->Fd);
      S->Fd = -1;
    }
  }
  Sessions.clear();
  for (auto &A : Admins)
    if (A->Fd >= 0)
      ::close(A->Fd);
  Admins.clear();
  return 0;
}

void CollectorDaemon::acceptSessions() {
  for (;;) {
    int Fd = ::accept(SessionLfd, nullptr, nullptr);
    if (Fd < 0)
      return; // EAGAIN or transient accept failure: back to poll
    if (static_cast<int>(Sessions.size()) >= Opt.MaxClients) {
      ++Stats.SessionsRefused;
      ::close(Fd);
      continue;
    }
    setNonBlocking(Fd, true);
    auto S = std::make_unique<Session>();
    S->Fd = Fd;
    S->Id = NextSessionId++;
    ++Stats.SessionsTotal;
    ++Stats.SessionsActive;
    if (Opt.Verbose)
      std::fprintf(stderr, "jdragd: session %llu connected\n",
                   static_cast<unsigned long long>(S->Id));
    Sessions.push_back(std::move(S));
  }
}

void CollectorDaemon::acceptAdmins() {
  for (;;) {
    int Fd = ::accept(AdminLfd, nullptr, nullptr);
    if (Fd < 0)
      return;
    setNonBlocking(Fd, true);
    auto A = std::make_unique<AdminConn>();
    A->Fd = Fd;
    Admins.push_back(std::move(A));
  }
}

//===----------------------------------------------------------------------===//
// Session input
//===----------------------------------------------------------------------===//

void CollectorDaemon::readSession(Session &S) {
  std::byte Buf[64 * 1024];
  for (;;) {
    long R = ::recv(S.Fd, Buf, sizeof(Buf), 0);
    if (R > 0) {
      S.Rd.append(Buf, static_cast<std::size_t>(R));
      MsgHeader H;
      std::span<const std::byte> Payload;
      for (;;) {
        MessageReader::Status St = S.Rd.next(H, Payload);
        if (St == MessageReader::Status::NeedMore)
          break;
        if (St == MessageReader::Status::Error) {
          protocolError(S, S.Rd.error());
          return;
        }
        handleMessage(S, H, Payload);
        if (S.Closed)
          return;
      }
      continue;
    }
    if (R < 0 && errno == EINTR)
      continue;
    if (R < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
      return; // drained; poll will call again
    // EOF or a hard error: the connection is gone. A partial message in
    // the reader is the interrupted chunk -- discarded by design, so the
    // recording ends at the last complete chunk boundary.
    finalizeSession(S, /*Clean=*/S.GotBye);
    ::close(S.Fd);
    S.Fd = -1;
    S.Closed = true;
    return;
  }
}

void CollectorDaemon::protocolError(Session &S, const std::string &Why) {
  ++Stats.ProtocolErrors;
  if (Opt.Verbose)
    std::fprintf(stderr, "jdragd: session %llu protocol error: %s\n",
                 static_cast<unsigned long long>(S.Id), Why.c_str());
  finalizeSession(S, /*Clean=*/false);
  S.State = "protocol-error";
  ::close(S.Fd);
  S.Fd = -1;
  S.Closed = true;
}

void CollectorDaemon::handleMessage(Session &S, const MsgHeader &H,
                                    std::span<const std::byte> Payload) {
  switch (static_cast<MsgType>(H.Type)) {
  case MsgType::Hello: {
    std::string Err;
    if (S.GotHello) {
      protocolError(S, "duplicate HELLO");
      return;
    }
    if (!decodeHello(Payload, S.Info, &Err)) {
      protocolError(S, Err);
      return;
    }
    if (S.Info.Protocol != ProtocolVersion) {
      protocolError(S, "protocol version mismatch (client " +
                           std::to_string(S.Info.Protocol) + ")");
      return;
    }
    S.GotHello = true;
    S.State = "streaming";
    S.FilePath = Opt.OutputDir + "/session-" + std::to_string(S.Id) + "-" +
                 sanitizeName(S.Info.Name) + ".jdev";
    profiler::FileEventSink::Options FO;
    FO.Format = S.Info.Format;
    FO.Sampling.SampleBytes = S.Info.SampleBytes;
    FO.Sampling.SampleSeed = S.Info.SampleSeed;
    FO.FsyncEveryChunks = Opt.FsyncEveryChunks;
    if (S.Rec.open(S.FilePath, FO)) {
      S.RecOpen = true;
    } else {
      S.RecFailed = true;
      ++Stats.RecordingErrors;
    }
    if (Opt.Resolve)
      S.Prog = Opt.Resolve(S.Info.Name);
    if (S.Prog) {
      S.Prof = std::make_unique<profiler::DragProfiler>(*S.Prog);
      S.Dec =
          std::make_unique<profiler::FrameDecoder>(*S.Prof, S.Info.Format);
    }
    if (Opt.Verbose)
      std::fprintf(stderr,
                   "jdragd: session %llu hello name=%s pid=%llu fmt=v%u%s\n",
                   static_cast<unsigned long long>(S.Id),
                   S.Info.Name.c_str(),
                   static_cast<unsigned long long>(S.Info.Pid),
                   static_cast<unsigned>(S.Info.Format),
                   S.Prog ? "" : " (unknown benchmark, record-only)");
    return;
  }
  case MsgType::Chunk: {
    if (!S.GotHello) {
      protocolError(S, "CHUNK before HELLO");
      return;
    }
    if (Payload.size() < sizeof(profiler::ChunkHeader)) {
      protocolError(S, "runt chunk message");
      return;
    }
    profiler::ChunkHeader CH;
    std::memcpy(&CH, Payload.data(), sizeof(CH));
    bool IsFooter = CH.Magic == profiler::FooterMagic;
    if (!IsFooter && CH.Magic != profiler::ChunkMagic) {
      protocolError(S, "chunk message without chunk magic");
      return;
    }
    // The inner length must agree with the message bytes, or the
    // recording would hold frames whose headers lie about their extent
    // and the chunk-aligned fsck-clean-prefix guarantee is void. A v6
    // session's length field may carry the compressed flag in bit 31;
    // the low bits are the on-wire size. A footer block carries 8 tail
    // bytes (u32 size, u32 tail magic) after its payload.
    bool V6 = S.Info.Format >= profiler::WireFormat::V6;
    bool Compressed =
        V6 && !IsFooter && profiler::chunkCompressed(CH.PayloadBytes);
    std::uint32_t WireLen =
        V6 ? profiler::chunkWireBytes(CH.PayloadBytes) : CH.PayloadBytes;
    if (WireLen > profiler::MaxChunkPayload ||
        Payload.size() != sizeof(profiler::ChunkHeader) + WireLen +
                              (IsFooter ? 8 : 0)) {
      protocolError(S, "chunk frame length disagrees with message length");
      return;
    }
    S.Bytes += Payload.size();
    Stats.BytesReceived += Payload.size();
    if (IsFooter) {
      ++S.Footers;
      ++Stats.FootersReceived;
    } else {
      ++S.DataChunks;
      ++Stats.ChunksReceived;
      std::uint64_t Raw =
          Compressed ? lzDeclaredRawLen(
                           Payload.data() + sizeof(profiler::ChunkHeader),
                           WireLen)
                     : WireLen;
      S.WirePayloadBytes += WireLen;
      S.RawPayloadBytes += Raw;
      Stats.WirePayloadBytes += WireLen;
      Stats.RawPayloadBytes += Raw;
    }
    // 1. Recording. A write failure degrades this session to
    // aggregate-only; the stream keeps flowing.
    if (S.RecOpen && !S.RecFailed &&
        !S.Rec.writeChunk(Payload.data(), Payload.size())) {
      S.RecFailed = true;
      ++Stats.RecordingErrors;
    }
    // 2. Live decode into the drag profile. Decode failures are counted
    // once and decoding stops, but recording continues -- the bytes can
    // still be salvaged and replayed offline.
    if (S.Dec && !S.DecodeFailed &&
        !S.Dec->feed(Payload.data(), Payload.size())) {
      S.DecodeFailed = true;
      ++Stats.DecodeErrors;
      if (Opt.Verbose)
        std::fprintf(stderr, "jdragd: session %llu decode failed: %s\n",
                     static_cast<unsigned long long>(S.Id),
                     S.Dec->error().c_str());
    }
    return;
  }
  case MsgType::Bye: {
    std::string Err;
    if (!S.GotHello || !decodeBye(Payload, S.Bye, &Err)) {
      protocolError(S, S.GotHello ? Err : "BYE before HELLO");
      return;
    }
    S.GotBye = true;
    Stats.ClientReportedDrops += S.Bye.ChunksDropped;
    if (S.Bye.ChunksSent != S.DataChunks)
      ++Stats.ByeMismatches;
    // The client is done; finalize now rather than waiting for EOF so
    // CLIENTS/TOP reflect the session as soon as it ends.
    finalizeSession(S, /*Clean=*/true);
    ::close(S.Fd);
    S.Fd = -1;
    S.Closed = true;
    return;
  }
  }
}

void CollectorDaemon::finalizeSession(Session &S, bool Clean) {
  if (S.Finalized)
    return;
  S.Finalized = true;
  if (Stats.SessionsActive)
    --Stats.SessionsActive;
  if (Clean)
    ++Stats.SessionsClean;
  else
    ++Stats.SessionsUnclean;
  if (S.RecOpen && !S.Rec.finish() && !S.RecFailed) {
    S.RecFailed = true;
    ++Stats.RecordingErrors;
  }
  if (S.Prof && !S.DecodeFailed && S.GotHello) {
    profiler::ProfileLog Log = S.Prof->takeLog();
    // The daemon's view of loss is the client's BYE claim; an unclean
    // session (no BYE) is marked incomplete outright.
    Log.Complete = Clean && S.Bye.ChunksDropped == 0;
    Log.DroppedChunks = S.Bye.ChunksDropped;
    Log.DroppedBytes = S.Bye.BytesDropped;
    // A sampled session's log carries the HELLO params so the fold's
    // per-site estimates are inverse-probability scaled. Exact sessions
    // normalize to {0, 0} (canonical exact-log form).
    Log.SampleRate = S.Info.SampleBytes;
    Log.SampleSeed = S.Info.SampleBytes ? S.Info.SampleSeed : 0;
    Log.Compressed = S.Info.Format >= profiler::WireFormat::V6;
    double Est = 0;
    for (const profiler::ObjectRecord &R : Log.Records) {
      S.RawObjBytes += R.Bytes;
      Est += static_cast<double>(R.Bytes) *
             profiler::sampleWeight(R.Bytes, Log.SampleRate);
    }
    S.EstObjBytes = static_cast<std::uint64_t>(Est);
    // One client's log must never take the collector down with it: a
    // fold that fails (however malformed the session was) costs that
    // session's contribution, nothing more.
    try {
      Fleet.fold(S.Info.Name, *S.Prog, Log);
    } catch (const std::exception &E) {
      S.DecodeFailed = true;
      ++Stats.DecodeErrors;
      if (Opt.Verbose)
        std::fprintf(stderr, "jdragd: session %llu fold failed: %s\n",
                     static_cast<unsigned long long>(S.Id), E.what());
    }
  }
  S.State = !S.GotHello          ? "hello-wait"
            : S.DecodeFailed     ? (Clean ? "clean-decode-failed"
                                          : "unclean-decode-failed")
            : Clean              ? "clean"
                                 : "unclean";
  FinishedClients.push_back(sessionLine(S));
  if (Opt.Verbose)
    std::fprintf(stderr, "jdragd: session %llu finalized (%s)\n",
                 static_cast<unsigned long long>(S.Id), S.State);
}

//===----------------------------------------------------------------------===//
// Admin protocol
//===----------------------------------------------------------------------===//

void CollectorDaemon::readAdmin(AdminConn &A) {
  char Buf[4096];
  for (;;) {
    long R = ::recv(A.Fd, Buf, sizeof(Buf), 0);
    if (R > 0) {
      A.In.append(Buf, static_cast<std::size_t>(R));
      std::size_t Nl;
      while ((Nl = A.In.find('\n')) != std::string::npos) {
        std::string Line = A.In.substr(0, Nl);
        A.In.erase(0, Nl + 1);
        if (!Line.empty() && Line.back() == '\r')
          Line.pop_back();
        A.Out += execAdmin(Line);
        A.Out += "END\n";
      }
      if (A.In.size() > MaxAdminLine || A.Out.size() > MaxAdminPendingOut) {
        A.Closed = true;
        return;
      }
      continue;
    }
    if (R < 0 && errno == EINTR)
      continue;
    if (R < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
      break;
    A.Closed = true;
    return;
  }
  flushAdmin(A);
}

void CollectorDaemon::flushAdmin(AdminConn &A) {
  while (!A.Out.empty()) {
    long W = ::send(A.Fd, A.Out.data(), A.Out.size(), MSG_NOSIGNAL);
    if (W > 0) {
      A.Out.erase(0, static_cast<std::size_t>(W));
      continue;
    }
    if (W < 0 && errno == EINTR)
      continue;
    if (W < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
      return; // poll will flag POLLOUT
    A.Closed = true;
    return;
  }
}

std::string CollectorDaemon::sessionLine(const Session &S) const {
  std::string Sample =
      !S.GotHello ? "-"
      : S.Info.SampleBytes == 0
          ? "exact"
          : formatString("%llu",
                         static_cast<unsigned long long>(S.Info.SampleBytes));
  std::string Line = formatString(
      "client %llu name=%s pid=%llu state=%s chunks=%llu footers=%llu "
      "bytes=%llu sample=%s file=%s",
      static_cast<unsigned long long>(S.Id),
      S.GotHello ? sanitizeName(S.Info.Name).c_str() : "-",
      static_cast<unsigned long long>(S.Info.Pid), S.State,
      static_cast<unsigned long long>(S.DataChunks),
      static_cast<unsigned long long>(S.Footers),
      static_cast<unsigned long long>(S.Bytes), Sample.c_str(),
      S.FilePath.empty() ? "-" : S.FilePath.c_str());
  // Scaled-vs-raw object-byte totals exist once the profile is folded;
  // a sampled session whose totals were summed raw would silently
  // undercount next to an exact one.
  if (S.Finalized && (S.RawObjBytes || S.EstObjBytes))
    Line += formatString(
        " raw-obj-bytes=%llu est-obj-bytes=%llu",
        static_cast<unsigned long long>(S.RawObjBytes),
        static_cast<unsigned long long>(S.EstObjBytes));
  // v6 sessions: what the compression bought, per session.
  if (S.GotHello && S.Info.Format >= profiler::WireFormat::V6)
    Line += formatString(
        " wire-bytes=%llu uncompressed-bytes=%llu ratio=%.2f",
        static_cast<unsigned long long>(S.WirePayloadBytes),
        static_cast<unsigned long long>(S.RawPayloadBytes),
        S.WirePayloadBytes
            ? static_cast<double>(S.RawPayloadBytes) /
                  static_cast<double>(S.WirePayloadBytes)
            : 1.0);
  return Line + "\n";
}

std::string CollectorDaemon::clientsReport() const {
  std::string Out;
  for (const auto &L : FinishedClients)
    Out += L;
  for (const auto &S : Sessions)
    if (!S->Finalized)
      Out += sessionLine(*S);
  return Out;
}

std::string CollectorDaemon::execAdmin(const std::string &Line) {
  // First whitespace-separated token selects the command.
  std::size_t B = Line.find_first_not_of(" \t");
  if (B == std::string::npos)
    return "ERR empty command\n";
  std::size_t E = Line.find_first_of(" \t", B);
  std::string Cmd = Line.substr(B, E == std::string::npos ? E : E - B);
  std::string Rest =
      E == std::string::npos ? std::string() : Line.substr(E + 1);

  if (Cmd == "PING")
    return "PONG\n";
  if (Cmd == "INFO")
    return formatString("jdragd proto=%u\nsession_addr=%s\nadmin_addr=%s\n"
                        "output_dir=%s\nsessions_active=%llu\n"
                        "sessions_total=%llu\nfleet_rows=%zu\n"
                        "fleet_sessions=%llu\nfleet_sampled_sessions=%llu\n"
                        "wire_payload_bytes=%llu\n"
                        "uncompressed_payload_bytes=%llu\n"
                        "compression_ratio=%.2f\n",
                        ProtocolVersion, SessAddr.str().c_str(),
                        AdminLfd >= 0 ? AdmAddr.str().c_str() : "-",
                        Opt.OutputDir.c_str(),
                        static_cast<unsigned long long>(Stats.SessionsActive),
                        static_cast<unsigned long long>(Stats.SessionsTotal),
                        Fleet.rowCount(),
                        static_cast<unsigned long long>(
                            Fleet.sessionsFolded()),
                        static_cast<unsigned long long>(
                            Fleet.sampledSessionsFolded()),
                        static_cast<unsigned long long>(
                            Stats.WirePayloadBytes),
                        static_cast<unsigned long long>(
                            Stats.RawPayloadBytes),
                        Stats.WirePayloadBytes
                            ? static_cast<double>(Stats.RawPayloadBytes) /
                                  static_cast<double>(Stats.WirePayloadBytes)
                            : 1.0);
  if (Cmd == "CLIENTS")
    return clientsReport();
  if (Cmd == "TOP") {
    unsigned long N = 10;
    if (!Rest.empty()) {
      try {
        N = std::stoul(Rest);
      } catch (...) {
        return "ERR TOP expects a count\n";
      }
    }
    return Fleet.renderTop(N);
  }
  if (Cmd == "HEALTH")
    return formatString(
        "sessions_total=%llu\nsessions_active=%llu\nsessions_clean=%llu\n"
        "sessions_unclean=%llu\nsessions_refused=%llu\n"
        "chunks_received=%llu\nfooters_received=%llu\nbytes_received=%llu\n"
        "decode_errors=%llu\nprotocol_errors=%llu\nrecording_errors=%llu\n"
        "client_reported_drops=%llu\nbye_mismatches=%llu\n",
        static_cast<unsigned long long>(Stats.SessionsTotal),
        static_cast<unsigned long long>(Stats.SessionsActive),
        static_cast<unsigned long long>(Stats.SessionsClean),
        static_cast<unsigned long long>(Stats.SessionsUnclean),
        static_cast<unsigned long long>(Stats.SessionsRefused),
        static_cast<unsigned long long>(Stats.ChunksReceived),
        static_cast<unsigned long long>(Stats.FootersReceived),
        static_cast<unsigned long long>(Stats.BytesReceived),
        static_cast<unsigned long long>(Stats.DecodeErrors),
        static_cast<unsigned long long>(Stats.ProtocolErrors),
        static_cast<unsigned long long>(Stats.RecordingErrors),
        static_cast<unsigned long long>(Stats.ClientReportedDrops),
        static_cast<unsigned long long>(Stats.ByeMismatches));
  if (Cmd == "SHUTDOWN") {
    requestShutdown();
    return "OK\n";
  }
  return "ERR unknown command '" + Cmd + "'\n";
}

//===----------------------------------------------------------------------===//
// adminQuery
//===----------------------------------------------------------------------===//

bool jdrag::daemon::adminQuery(const std::string &AddrSpec,
                               const std::string &Cmd, std::string *Response,
                               std::string *Err, int TimeoutMs) {
  Address A;
  if (!parseAddress(AddrSpec, A, Err))
    return false;
  int SockErr = 0;
  int Fd = connectTo(A, TimeoutMs, &SockErr);
  if (Fd < 0) {
    if (Err)
      *Err = "connect " + A.str() + ": " + std::strerror(SockErr);
    return false;
  }
  std::string Line = Cmd + "\n";
  std::size_t Off = 0;
  while (Off < Line.size()) {
    long W = ::send(Fd, Line.data() + Off, Line.size() - Off, MSG_NOSIGNAL);
    if (W < 0 && errno == EINTR)
      continue;
    if (W <= 0) {
      if (Err)
        *Err = std::string("send: ") + std::strerror(errno);
      ::close(Fd);
      return false;
    }
    Off += static_cast<std::size_t>(W);
  }
  std::string Resp;
  char Buf[4096];
  for (;;) {
    pollfd P{Fd, POLLIN, 0};
    int Rc = ::poll(&P, 1, TimeoutMs);
    if (Rc < 0 && errno == EINTR)
      continue;
    if (Rc <= 0) {
      if (Err)
        *Err = Rc == 0 ? "admin response timeout"
                       : std::string("poll: ") + std::strerror(errno);
      ::close(Fd);
      return false;
    }
    long R = ::recv(Fd, Buf, sizeof(Buf), 0);
    if (R < 0 && errno == EINTR)
      continue;
    if (R <= 0) {
      if (Err)
        *Err = R == 0 ? "connection closed before END"
                      : std::string("recv: ") + std::strerror(errno);
      ::close(Fd);
      return false;
    }
    Resp.append(Buf, static_cast<std::size_t>(R));
    // The terminator is an END *line*: either the whole (empty-body)
    // response or preceded by the body's final newline. Body lines never
    // collide -- they are prefixed (client/key=value) or PONG/OK/ERR.
    bool Done = Resp.size() >= 4 &&
                Resp.compare(Resp.size() - 4, 4, "END\n") == 0 &&
                (Resp.size() == 4 || Resp[Resp.size() - 5] == '\n');
    if (Done) {
      Resp.erase(Resp.size() - 4);
      break;
    }
  }
  ::close(Fd);
  if (Response)
    *Response = Resp;
  return true;
}
