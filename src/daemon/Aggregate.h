//===- daemon/Aggregate.h - Fleet-wide drag table ---------------*- C++ -*-===//
//
// Part of jdrag (PLDI 2001 "Heap Profiling for Space-Efficient Java").
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The collector daemon's cross-client view: every finished session's
/// ProfileLog is folded into one table keyed by (benchmark, rendered
/// allocation site), accumulating drag, object and byte totals over the
/// whole fleet. `TOP <n>` on the admin port renders the heaviest rows --
/// the paper's "sites sorted by drag" list, but across every VM that
/// ever streamed to this daemon.
///
/// Rendering goes through the same DragReport/SiteTable code the offline
/// tool uses, so for a single uninterrupted session the daemon's TOP
/// output is bit-identical to `jdragd top` over the recorded file (the
/// differential test in tests/test_daemon.cpp holds this line).
///
//===----------------------------------------------------------------------===//

#ifndef JDRAG_DAEMON_AGGREGATE_H
#define JDRAG_DAEMON_AGGREGATE_H

#include "profiler/ProfileLog.h"
#include "support/Units.h"

#include <cstdint>
#include <map>
#include <string>

namespace jdrag::ir {
class Program;
} // namespace jdrag::ir

namespace jdrag::analysis {
class DragReport;
} // namespace jdrag::analysis

namespace jdrag::daemon {

/// One (benchmark, site) row of the fleet table.
struct FleetRow {
  SpaceTime Drag = 0; ///< byte^2; scaled estimate for sampled sessions
  std::uint64_t Objects = 0;
  std::uint64_t Bytes = 0;
  std::uint64_t Sessions = 0; ///< sessions that contributed to this row
  /// How many of those sessions were sampled (their drag contribution
  /// is an inverse-probability-scaled estimate, not an exact sum).
  /// TOP flags rows with any sampled contribution.
  std::uint64_t SampledSessions = 0;
};

class FleetAggregate {
public:
  /// Folds one session's log: per-site drag sums from a DragReport are
  /// added to the fleet rows under "<bench>  <site>" keys. Builds the
  /// report with the shared fold engine (analysis/RecordFold.h) and
  /// delegates to the DragReport overload.
  void fold(const std::string &Bench, const ir::Program &P,
            const profiler::ProfileLog &Log);

  /// Folds an already-built report -- e.g. one the streaming engine
  /// produced without ever materializing the session's records.
  void fold(const std::string &Bench, const analysis::DragReport &Report);

  /// The heaviest \p N rows, one line each, sorted by drag descending
  /// (key ascending on ties -- fully deterministic).
  std::string renderTop(std::size_t N) const;

  SpaceTime totalDrag() const { return Total; }
  std::uint64_t sessionsFolded() const { return Folded; }
  std::uint64_t sampledSessionsFolded() const { return SampledFolded; }
  std::size_t rowCount() const { return Rows.size(); }

private:
  /// Ordered map: iteration (and therefore tie-breaking) is
  /// deterministic across runs.
  std::map<std::string, FleetRow> Rows;
  SpaceTime Total = 0;
  std::uint64_t Folded = 0;
  std::uint64_t SampledFolded = 0;
};

} // namespace jdrag::daemon

#endif // JDRAG_DAEMON_AGGREGATE_H
